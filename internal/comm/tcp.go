package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"weipipe/internal/trace"
)

// TCPTransport is a Transport over a full TCP mesh: every pair of ranks
// shares one connection. The transport is hardened against the failures a
// commodity-Ethernet deployment sees (the paper trains over 10 Gb
// Ethernet):
//
//   - every frame carries a per-link sequence number and a CRC32; the
//     receiver delivers frames in sequence order, discards duplicates and
//     corrupt frames, and acknowledges cumulatively;
//   - the sender keeps frames until they are acknowledged and retransmits
//     them when acknowledgements stall (or after a reconnection), so frame
//     loss, duplication and reordering below the transport — including the
//     deterministic ChaosConfig injector used by the chaos test suite —
//     never reach the training protocol;
//   - heartbeats flow on idle links; a broken connection is re-dialed with
//     bounded exponential backoff, and a peer silent past PeerDeadTimeout
//     is declared dead, failing every pending receive with *PeerDeadError
//     so blocked runners abort cleanly instead of hanging.
//
// Send keeps the same never-blocks contract as the in-process transport;
// Recv blocks until a matching message arrives, a deadline expires, or the
// transport fails.
type TCPTransport struct {
	rank  int
	size  int
	opts  TCPOptions
	box   *mailbox
	links []*tcpLink // index by peer rank; links[rank] == nil
	ln    *net.TCPListener
	stats *Stats

	deadMu    sync.Mutex
	deadPeers map[int]error // peers declared dead, with the declaring cause

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// TCPOptions tunes the failure model of a TCP mesh. The zero value selects
// production defaults; tests shrink the timeouts.
type TCPOptions struct {
	// Epoch is the cluster incarnation this endpoint belongs to. It rides
	// in the connection handshake and in every frame header; connections
	// and frames from any other epoch are rejected (see the epoch fence in
	// frame.go). Elastic repair bumps the epoch when the survivors rebuild
	// the mesh, so a stale segment of a partitioned ring can neither
	// rejoin nor refresh anyone's liveness. Default 0.
	Epoch uint32
	// DialTimeout bounds the whole initial mesh bring-up: a peer that never
	// comes up yields a per-peer error instead of hanging forever.
	// Default 15s.
	DialTimeout time.Duration
	// HeartbeatInterval is the idle-link heartbeat period. Default 500ms.
	HeartbeatInterval time.Duration
	// PeerDeadTimeout is how long a peer may stay silent (no frames, no
	// successful reconnection) before it is declared dead. Default 10s.
	PeerDeadTimeout time.Duration
	// RetransmitTimeout is how long the sender waits for acknowledgement
	// progress before re-sending unacknowledged frames. Default 250ms.
	RetransmitTimeout time.Duration
	// ReconnectBackoff is the initial re-dial backoff; it doubles per
	// attempt, capped at 500ms. Default 20ms.
	ReconnectBackoff time.Duration
	// MaxPayloadElems bounds the per-frame payload the decoder will accept.
	// Default 1<<28 elements (1 GiB).
	MaxPayloadElems int
	// Codec selects the per-Tag wire codec (nil means f32 everywhere). With
	// BeltBF16 the weight/grad belt frames travel at half width; the codec
	// rides in the frame header, so the receiver needs no configuration.
	Codec CodecFunc
	// Chaos, when non-nil, injects deterministic frame-level faults on every
	// outgoing data frame — the fault layer the reliability machinery must
	// mask. Never set it outside tests.
	Chaos *ChaosConfig
	// Trace, when non-nil, receives send/recv/retransmit spans for this
	// rank. Each process owns one rank, so the option carries a single
	// tracer rather than a Set.
	Trace *trace.Tracer
	// P2PMode selects the per-link wire packaging (see p2pmode.go):
	// P2PFrame (default), P2PBatched burst envelopes, P2PDuplex ctl
	// lanes, or P2PAuto per-link selection. Receivers accept every
	// packaging unconditionally, so endpoints of one mesh may disagree.
	P2PMode P2PMode
	// GroupSize, when positive, seeds P2PAuto's per-link decision by
	// topology tier before any RTT measurement exists: links crossing a
	// group boundary (rank/GroupSize differs) start batched, intra-group
	// links duplex. Mirrors pipeline.Options.GroupSize. Ignored unless
	// P2PMode is P2PAuto.
	GroupSize int
	// AutoRTTSec overrides cost.P2PBatchRTTSec as P2PAuto's measured-RTT
	// threshold for preferring the batched mode (tests use tiny values to
	// force deterministic mid-run re-decisions). 0 selects the default.
	AutoRTTSec float64
}

// Connection handshake lanes: the main data connection and the optional
// duplex-mode ctl lane.
const (
	laneData uint32 = 0
	laneCtl  uint32 = 1
)

// defaultSendWindow bounds the unacknowledged frames in flight per link.
// Training traffic is few-but-large frames (whole weight chunks), so a
// small frame window costs no throughput while keeping the retransmit
// buffer — and the data an abrupt disconnect can lose — bounded.
const defaultSendWindow = 32

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.PeerDeadTimeout <= 0 {
		o.PeerDeadTimeout = 10 * time.Second
	}
	if o.RetransmitTimeout <= 0 {
		o.RetransmitTimeout = 250 * time.Millisecond
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 20 * time.Millisecond
	}
	if o.MaxPayloadElems <= 0 {
		o.MaxPayloadElems = defaultMaxFrameElems
	}
	return o
}

// ChaosConfig injects deterministic faults into a link's outgoing data
// frames, below the sequence/retransmission layer: the transport must mask
// every one of them. Decisions are keyed by (Seed, src, dst, frame
// ordinal) so a run's fault pattern depends only on the seed and the
// traffic.
type ChaosConfig struct {
	Seed uint64
	// Drop discards the frame (retransmission must recover it).
	Drop float64
	// Dup writes the frame twice (dedup must discard the copy).
	Dup float64
	// Reorder holds the frame and writes it after the next one.
	Reorder float64
	// Corrupt flips one payload byte (CRC must reject the frame).
	Corrupt float64
	// DelayProb sleeps the writer up to MaxDelay before the frame.
	DelayProb float64
	MaxDelay  time.Duration
	// ResetEvery forcibly closes the connection after every n-th data frame
	// (0 = never), exercising reconnection + retransmission.
	ResetEvery int
}

// DialTCP builds the mesh endpoint for rank with default options. addrs
// lists each rank's listen address (host:port); rank listens on
// addrs[rank], accepts connections from higher ranks and dials all lower
// ranks. The call returns once the mesh is fully connected, or fails with
// a per-peer error when the bring-up deadline expires. All ranks must call
// DialTCP concurrently.
func DialTCP(rank int, addrs []string) (*TCPTransport, error) {
	return DialTCPOpts(rank, addrs, TCPOptions{})
}

// DialTCPOpts is DialTCP with explicit failure-model options.
func DialTCPOpts(rank int, addrs []string, opts TCPOptions) (*TCPTransport, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: rank %d out of range of %d addrs", rank, size)
	}
	if opts.P2PMode >= p2pModeCount {
		return nil, fmt.Errorf("comm: invalid P2P mode %d", opts.P2PMode)
	}
	opts = opts.withDefaults()
	t := &TCPTransport{
		rank:      rank,
		size:      size,
		opts:      opts,
		box:       newMailbox(),
		links:     make([]*tcpLink, size),
		stats:     newStats(),
		deadPeers: make(map[int]error),
		done:      make(chan struct{}),
	}
	t.box.stats = t.stats
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[rank], err)
	}
	t.ln = ln.(*net.TCPListener)

	now := time.Now()
	deadline := now.Add(opts.DialTimeout)
	for peer := 0; peer < size; peer++ {
		if peer == rank {
			continue
		}
		l := &tcpLink{
			t:           t,
			peer:        peer,
			addr:        addrs[peer],
			dialer:      peer < rank,
			rexpect:     1,
			nextSeq:     1,
			window:      defaultSendWindow,
			ooo:         make(map[uint64]oooMsg),
			lastContact: now,
			up:          make(chan struct{}),
		}
		if ch := opts.Chaos; ch != nil && ch.ResetEvery > 0 && ch.ResetEvery/2 < l.window {
			// Guaranteed progress under a write-count-keyed connection
			// killer needs the in-flight set strictly smaller than the kill
			// period: everything acknowledged before a reset is retired for
			// good, everything in flight may die with the connection.
			l.window = ch.ResetEvery / 2
			if l.window < 1 {
				l.window = 1
			}
		}
		l.mode = opts.P2PMode
		if l.mode == P2PAuto {
			l.mode = autoSeedMode(opts.GroupSize, rank, peer)
		}
		t.stats.recordLinkMode(peer, l.mode)
		l.cond = sync.NewCond(&l.mu)
		t.links[peer] = l
		t.wg.Add(2)
		go l.writeLoop()
		go l.ctlWriteLoop()
	}

	// Accept connections from higher ranks — during bring-up and, for
	// reconnections, for the transport's whole lifetime.
	t.wg.Add(1)
	go t.acceptLoop(deadline)

	// Dial all lower ranks (with retry: peers may not be listening yet).
	errc := make(chan error, size)
	for peer := 0; peer < rank; peer++ {
		t.wg.Add(1)
		go func(peer int) {
			defer t.wg.Done()
			if err := t.dialPeer(peer, deadline); err != nil {
				errc <- err
			}
		}(peer)
	}

	// Wait for every link to come up once, the deadline, or a dial error.
	for {
		allUp := true
		for peer, l := range t.links {
			if l == nil {
				continue
			}
			select {
			case <-l.up:
			default:
				allUp = false
				if time.Now().After(deadline) {
					t.Close()
					return nil, fmt.Errorf("comm: rank %d: peer %d (%s) not connected after %v",
						rank, peer, addrs[peer], opts.DialTimeout)
				}
			}
		}
		if allUp {
			break
		}
		select {
		case err := <-errc:
			t.Close()
			return nil, err
		case <-time.After(5 * time.Millisecond):
		}
	}

	t.wg.Add(1)
	go t.monitorLoop()
	return t, nil
}

// dialPeer establishes (once) the initial connection to a lower rank,
// retrying until deadline. Definitive failure is returned.
func (t *TCPTransport) dialPeer(peer int, deadline time.Time) error {
	l := t.links[peer]
	var lastErr error
	for {
		if t.isClosed() {
			return nil
		}
		if time.Now().After(deadline) {
			if lastErr == nil {
				lastErr = errors.New("no attempt completed")
			}
			return fmt.Errorf("comm: dial rank %d (%s): gave up after %v: %w",
				peer, l.addr, t.opts.DialTimeout, lastErr)
		}
		conn, err := net.DialTimeout("tcp", l.addr, 250*time.Millisecond)
		if err != nil {
			lastErr = err
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if err := l.completeHello(conn, laneData); err != nil {
			conn.Close()
			if errors.Is(err, errStaleEpoch) {
				// The peer is another cluster incarnation: retrying cannot
				// help, and joining it would breach the split-brain fence.
				return fmt.Errorf("comm: dial rank %d (%s): %w", peer, l.addr, err)
			}
			lastErr = err
			time.Sleep(10 * time.Millisecond)
			continue
		}
		l.install(conn)
		return nil
	}
}

// acceptLoop accepts handshakes from higher ranks for the transport's
// lifetime; during bring-up the listener carries the overall deadline so a
// missing peer cannot park the goroutine forever.
func (t *TCPTransport) acceptLoop(bringup time.Time) {
	defer t.wg.Done()
	for {
		if t.isClosed() {
			return
		}
		if t.meshUp() {
			t.ln.SetDeadline(time.Time{})
		} else {
			t.ln.SetDeadline(bringup)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if !t.meshUp() {
					return // bring-up failed; DialTCPOpts reports the missing peer
				}
				continue
			}
			return // listener closed
		}
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		var hdr [12]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Time{})
		peer := int(binary.LittleEndian.Uint32(hdr[0:4]))
		lane := binary.LittleEndian.Uint32(hdr[8:12])
		if peer <= t.rank || peer >= t.size || lane > laneCtl {
			conn.Close()
			continue
		}
		if epoch := binary.LittleEndian.Uint32(hdr[4:8]); epoch != t.opts.Epoch {
			// A connection from another cluster incarnation: a zombie from a
			// partitioned-away segment (or a badly stale reconnect). Refuse
			// it — the epoch fence must hold at admission, not just per
			// frame.
			t.stats.recordStaleEpoch(peer)
			conn.Close()
			continue
		}
		// Admission ack: echo our own hello so the dialer learns it was
		// accepted (and at which epoch) before it considers the link up.
		if _, err := conn.Write(t.helloBytes(lane)); err != nil {
			conn.Close()
			continue
		}
		if lane == laneCtl {
			// Duplex-mode ctl lane: acks and heartbeats get their own
			// connection. Accepted unconditionally — the lane is the
			// *dialer's* mode decision, and a receiver is always willing.
			t.links[peer].installCtl(conn)
		} else {
			t.links[peer].install(conn)
		}
	}
}

// errStaleEpoch marks a handshake refused by the epoch fence: the peer
// answered from a different cluster incarnation. Dial paths treat it as
// definitive — retrying cannot reconcile two incarnations.
var errStaleEpoch = errors.New("comm: epoch fence rejected handshake")

// completeHello runs the dialer side of the connection handshake: write
// our rank|epoch hello, then wait for the acceptor to echo its own as the
// admission ack. Without the ack the dialer cannot distinguish "admitted"
// from "silently refused by the epoch fence", and would install a link
// the peer has already discarded.
func (l *tcpLink) completeHello(conn net.Conn, lane uint32) error {
	if _, err := conn.Write(l.t.helloBytes(lane)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	var ack [12]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Time{})
	if got := int(binary.LittleEndian.Uint32(ack[0:4])); got != l.peer {
		return fmt.Errorf("comm: handshake ack claims rank %d, want %d", got, l.peer)
	}
	if epoch := binary.LittleEndian.Uint32(ack[4:8]); epoch != l.t.opts.Epoch {
		l.t.stats.recordStaleEpoch(l.peer)
		return fmt.Errorf("%w: peer %d at epoch %d, local epoch %d",
			errStaleEpoch, l.peer, epoch, l.t.opts.Epoch)
	}
	return nil
}

// helloBytes builds the connection handshake: rank u32 | epoch u32 |
// lane u32. The acceptor validates rank and epoch, routes the connection
// by lane (data vs duplex ctl), then echoes its own hello as the
// admission ack.
func (t *TCPTransport) helloBytes(lane uint32) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(t.rank))
	binary.LittleEndian.PutUint32(hdr[4:8], t.opts.Epoch)
	binary.LittleEndian.PutUint32(hdr[8:12], lane)
	return hdr[:]
}

// meshUp reports whether every link has connected at least once.
func (t *TCPTransport) meshUp() bool {
	for _, l := range t.links {
		if l == nil {
			continue
		}
		select {
		case <-l.up:
		default:
			return false
		}
	}
	return true
}

func (t *TCPTransport) isClosed() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// monitorLoop drives heartbeats, retransmission timeouts, heartbeat-miss
// accounting and peer-death detection for every link.
func (t *TCPTransport) monitorLoop() {
	defer t.wg.Done()
	period := t.opts.HeartbeatInterval / 2
	if rto := t.opts.RetransmitTimeout / 2; rto < period {
		period = rto
	}
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for _, l := range t.links {
			if l != nil {
				l.tick(now)
			}
		}
	}
}

// LoopbackAddrs returns n distinct 127.0.0.1 addresses on free ports, for
// tests and single-machine multi-process examples.
func LoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

// Rank implements Transport.
func (t *TCPTransport) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCPTransport) Size() int { return t.size }

// CommStats implements Meter.
func (t *TCPTransport) CommStats() *Stats { return t.stats }

// WireCodec implements CodecProvider: the codec payloads sent under tag are
// encoded with on the wire.
func (t *TCPTransport) WireCodec(tag Tag) WireCodec { return codecFor(t.opts.Codec, tag) }

// Send implements Transport. The payload is copied at the send boundary
// (the caller keeps its slice); frame encoding and checksumming happen
// later, on the link's writer goroutine, so the compute thread pays one
// memcpy and never a CRC.
func (t *TCPTransport) Send(dst int, tag Tag, data []float32) error {
	payload := GetBuf(len(data))
	copy(payload, data)
	return t.SendOwned(dst, tag, payload)
}

// SendOwned implements OwnedSender: the donated payload is enqueued for the
// link writer without a copy and released once encoded onto the wire (or at
// shutdown). Self-sends deliver the buffer straight to the local mailbox.
func (t *TCPTransport) SendOwned(dst int, tag Tag, payload []float32) error {
	tr := t.opts.Trace
	span := tr.Begin()
	defer tr.End(span, trace.CodeSend, int64(tag.Kind), int64(dst))
	codec := codecFor(t.opts.Codec, tag)
	t.stats.recordPeer(t.rank, dst, tag.Kind, len(payload), codec.bytesPerElem())
	if dst == t.rank {
		// Self-sends never cross the wire, but a lossy codec must round them
		// exactly like the mesh does or ranks would observe transport-
		// dependent values.
		applyCodec(codec, payload)
		t.box.deliver(msgKey{src: t.rank, tag: tag}, payload)
		return nil
	}
	if dst < 0 || dst >= t.size {
		Release(payload)
		return fmt.Errorf("comm: send to invalid rank %d", dst)
	}
	if t.isClosed() {
		Release(payload)
		return ErrClosed
	}
	return t.links[dst].send(tag, codec, payload)
}

// Recv implements Transport.
func (t *TCPTransport) Recv(src int, tag Tag) ([]float32, error) {
	return t.RecvTimeout(src, tag, 0)
}

// RecvTimeout implements Transport.
func (t *TCPTransport) RecvTimeout(src int, tag Tag, timeout time.Duration) ([]float32, error) {
	if src < 0 || src >= t.size {
		return nil, fmt.Errorf("comm: recv from invalid rank %d", src)
	}
	// After BeginRecovery the mailbox accepts takes again, but a receive
	// naming a dead peer must keep failing fast with the typed evidence —
	// not burn a whole timeout on a rank that can never answer.
	if src != t.rank {
		t.deadMu.Lock()
		cause, dead := t.deadPeers[src]
		t.deadMu.Unlock()
		if dead {
			if payload, ok := t.box.tryTake(msgKey{src: src, tag: tag}); ok {
				return payload, nil // already delivered before the death
			}
			return nil, &PeerDeadError{Rank: src, Cause: cause}
		}
	}
	tr := t.opts.Trace
	span := tr.Begin()
	payload, err := t.box.take(msgKey{src: src, tag: tag}, timeout)
	tr.End(span, trace.CodeRecv, int64(tag.Kind), int64(src))
	if err != nil && errors.Is(err, ErrTimeout) {
		t.stats.recordTimeout(src)
	}
	return payload, err
}

// Flush blocks until every frame queued for a live peer has been
// acknowledged (or timeout expires, or the endpoint closes). Close drops
// unacknowledged frames by design — it models an abrupt kill — so a clean
// shutdown must flush first, or the tail of an exchange protocol can
// vanish from under a peer that is still receiving. Links to peers the
// failure detector has declared dead are skipped: their backlog can never
// drain.
func (t *TCPTransport) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		for _, l := range t.links {
			if l == nil {
				continue
			}
			l.mu.Lock()
			if !l.dead && !l.closed {
				pending += len(l.sendq)
			}
			l.mu.Unlock()
		}
		if pending == 0 || t.isClosed() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: flush timed out with %d frames unacknowledged", pending)
		}
		time.Sleep(time.Millisecond)
	}
}

// FlushTransport drains t's send queues when the transport supports it
// (see TCPTransport.Flush); in-process transports deliver synchronously
// and need no flush.
func FlushTransport(t Transport, timeout time.Duration) error {
	if f, ok := t.(interface{ Flush(time.Duration) error }); ok {
		return f.Flush(timeout)
	}
	return nil
}

// Close implements Transport. It fails all pending receives, tears down
// every connection and waits for every background goroutine to exit — a
// closed transport leaks nothing.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		t.box.close()
		close(t.done)
		t.ln.Close()
		for _, l := range t.links {
			if l != nil {
				l.shutdown()
			}
		}
		t.wg.Wait()
	})
	return nil
}

// peerDead fails the whole endpoint: the training protocol cannot make
// progress without the peer, so every blocked receive must abort. The
// death is also recorded so BeginRecovery can report it after reopening
// the mailbox for the membership-agreement exchange.
func (t *TCPTransport) peerDead(peer int, cause error) {
	t.deadMu.Lock()
	if _, seen := t.deadPeers[peer]; !seen {
		t.deadPeers[peer] = cause
	}
	t.deadMu.Unlock()
	t.box.closeWithErr(&PeerDeadError{Rank: peer, Cause: cause})
}

// DeadPeers lists the peers this endpoint's failure detector has declared
// dead, in ascending rank order.
func (t *TCPTransport) DeadPeers() []int {
	t.deadMu.Lock()
	out := make([]int, 0, len(t.deadPeers))
	for r := range t.deadPeers {
		out = append(out, r)
	}
	t.deadMu.Unlock()
	sort.Ints(out)
	return out
}

// BeginRecovery transitions the endpoint from "failed" to "recovering":
// the mailbox, wholesale-closed by the first peer death so every blocked
// runner aborts, is reopened so the survivors can exchange membership
// evidence over the still-healthy links. It returns the locally-observed
// dead set. Sends and receives naming a dead peer keep failing fast with
// *PeerDeadError; a further peer death during recovery closes the mailbox
// again (call BeginRecovery again to continue). After a local Close the
// mailbox stays closed and BeginRecovery only reports the dead set.
func (t *TCPTransport) BeginRecovery() []int {
	dead := t.DeadPeers()
	t.box.reopen()
	return dead
}

// Blackhole makes this endpoint drop every outgoing byte (data, acks,
// heartbeats, reconnection handshakes) to the given peers for d — a
// deterministic network-partition injector. Incoming traffic still
// flows, so an asymmetric partition is one-sided Blackhole and a full
// partition is Blackhole on both sides. Frames queued during the window
// stay in the retransmit queue: a blackout shorter than PeerDeadTimeout
// heals by retransmission, a longer one fires the failure detector.
func (t *TCPTransport) Blackhole(peers []int, d time.Duration) {
	until := time.Now().Add(d)
	for _, p := range peers {
		if p < 0 || p >= t.size || p == t.rank || t.links[p] == nil {
			continue
		}
		l := t.links[p]
		l.mu.Lock()
		l.blackUntil = until
		l.mu.Unlock()
	}
}

// ---- per-link state ------------------------------------------------------

// outFrame is one unacknowledged outgoing data frame. Frames are enqueued
// with the raw payload and encoded lazily by the writer goroutine: wire is
// nil until the first write, after which payload has been released back to
// the pool. Only the writer touches payload/wire post-enqueue; the ack
// handler reads seq alone.
type outFrame struct {
	seq     uint64
	tag     Tag
	codec   WireCodec
	payload []float32
	wire    []byte
}

// oooMsg is a received data frame waiting for its predecessors.
type oooMsg struct {
	tag     Tag
	payload []float32
}

// tcpLink owns one peer connection: the outgoing retransmit queue, the
// incoming sequence/dedup state, and the reconnection machinery.
type tcpLink struct {
	t      *TCPTransport
	peer   int
	addr   string
	dialer bool // this side re-dials after a break

	mu   sync.Mutex
	cond *sync.Cond
	conn net.Conn
	gen  int // connection generation; stale goroutines detect replacement

	// outgoing: sendq[:sent] written on the current connection (but not yet
	// acknowledged), sendq[sent:] pending. Acknowledged frames are popped
	// from the front; a reconnection or retransmission timeout resets sent
	// to 0, re-sending everything unacknowledged. At most `window` frames
	// are in flight: an abrupt connection loss can discard everything the
	// peer has not yet consumed (TCP reset semantics), so unbounded bursts
	// would let a repeating connection-killing fault erase each burst whole
	// and re-send it forever — the window keeps acknowledged progress
	// accumulating between failures.
	sendq       []*outFrame
	sent        int
	window      int
	nextSeq     uint64
	lastAckTime time.Time
	ackDirty    bool // an ack should be sent
	hbDue       bool // a heartbeat should be sent

	// incoming
	rexpect uint64 // next expected data sequence
	ooo     map[uint64]oooMsg

	lastContact time.Time // last frame received or connection established
	lastBeat    time.Time // last heartbeat queued
	lastMiss    time.Time // last heartbeat-miss counted
	downSince   time.Time // zero while connected
	quietUntil  time.Time // post-reconnect window where only ctl frames flow
	blackUntil  time.Time // injected-partition window: no bytes leave the link

	redialing bool
	dead      bool
	closed    bool

	up     chan struct{} // closed on first successful connection
	upOnce sync.Once

	// P2P mode controller state. mode is the link's current effective
	// packaging (never P2PAuto: auto resolves to batched or duplex);
	// modeForced pins it against the auto controller (SetLinkMode). The
	// RTT probe stamps one in-flight data frame at a time and folds the
	// ack round-trip into an EWMA the auto re-decision reads.
	mode       P2PMode
	modeForced bool
	rttEWMA    time.Duration
	probeSeq   uint64 // seq of the outstanding RTT probe frame; 0 = none
	probeAt    time.Time

	// Duplex ctl lane: a second connection carrying acks/heartbeats with
	// its own writer goroutine, so a blocked bulk write never delays the
	// ack that un-stalls the peer. nil outside duplex mode (and before
	// the lazy dial completes); ctl traffic falls back to the main
	// connection whenever the lane is down.
	ctlConn     net.Conn
	ctlGen      int
	ctlDialing  bool
	nextCtlDial time.Time

	// chaos state (writer-side)
	chaosN    uint64
	chaosHeld []byte
}

// SetLinkMode pins one link's P2P packaging mode at runtime — the test
// hook behind the mid-run mode-switch equivalence suite, and an operator
// override. Passing P2PAuto un-pins the link and returns it to the auto
// controller (re-seeded by topology tier until fresh RTT samples land).
func (t *TCPTransport) SetLinkMode(peer int, mode P2PMode) error {
	if peer < 0 || peer >= t.size || peer == t.rank || t.links[peer] == nil {
		return fmt.Errorf("comm: no link to rank %d", peer)
	}
	if mode >= p2pModeCount {
		return fmt.Errorf("comm: invalid P2P mode %d", mode)
	}
	l := t.links[peer]
	l.mu.Lock()
	eff := mode
	if mode == P2PAuto {
		l.modeForced = false
		eff = autoSeedMode(t.opts.GroupSize, t.rank, peer)
	} else {
		l.modeForced = true
	}
	switched := eff != l.mode
	l.mode = eff
	l.mu.Unlock()
	if switched {
		t.stats.recordLinkMode(peer, eff)
		t.stats.recordModeSwitch(peer)
		t.opts.Trace.Instant(trace.CodeModeSwitch, int64(peer), int64(eff))
	}
	l.cond.Broadcast()
	return nil
}

// LinkMode reports a link's current effective packaging mode (under
// P2PAuto this is the controller's latest decision, never "auto" itself).
func (t *TCPTransport) LinkMode(peer int) P2PMode {
	if peer < 0 || peer >= t.size || peer == t.rank || t.links[peer] == nil {
		return P2PFrame
	}
	l := t.links[peer]
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode
}

// send enqueues one data frame, taking ownership of payload. Encoding is
// deferred to the writer goroutine (writeLoop), so the caller never blocks
// on checksumming or the socket.
func (l *tcpLink) send(tag Tag, codec WireCodec, payload []float32) error {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		Release(payload)
		return &PeerDeadError{Rank: l.peer}
	}
	if l.closed {
		l.mu.Unlock()
		Release(payload)
		return ErrClosed
	}
	seq := l.nextSeq
	l.nextSeq++
	if len(l.sendq) == 0 {
		l.lastAckTime = time.Now()
	}
	l.sendq = append(l.sendq, &outFrame{seq: seq, tag: tag, codec: codec, payload: payload})
	l.mu.Unlock()
	l.cond.Broadcast()
	return nil
}

// install adopts a new connection (initial or reconnect) and spawns its
// read loop.
func (l *tcpLink) install(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	l.mu.Lock()
	if l.closed || l.dead {
		l.mu.Unlock()
		conn.Close()
		return
	}
	if l.conn != nil {
		l.conn.Close() // replaced by a fresher connection
	}
	reconnect := !l.downSince.IsZero()
	l.gen++
	gen := l.gen
	l.conn = conn
	l.downSince = time.Time{}
	l.sent = 0 // retransmit everything unacknowledged on the new connection
	// Re-send the cumulative ack too: the previous one may have died with the
	// old connection, and without it the peer re-sends its whole backlog
	// forever (acks are the only thing that retire its queue).
	if l.rexpect > 1 {
		l.ackDirty = true
	}
	now := time.Now()
	if reconnect {
		// Hold data back briefly so both sides' control frames (the
		// re-armed acks above) cross before retransmission floods the new
		// connection. Without the pause, a fault pattern that kills
		// connections by write count can starve the reverse-direction ack
		// forever: each incarnation dies before the peer's writer wakes,
		// and the same backlog is re-sent for eternity.
		l.quietUntil = now.Add(l.t.opts.RetransmitTimeout / 16)
	}
	l.lastContact = now
	l.lastAckTime = now
	l.mu.Unlock()
	l.upOnce.Do(func() { close(l.up) })
	if reconnect {
		l.t.stats.recordReconnect(l.peer)
	}
	l.t.wg.Add(1)
	go l.readLoop(conn, gen)
	l.cond.Broadcast()
}

// markDown records a broken connection (ignoring stale generations) and,
// on the dialing side, starts the re-dial loop.
func (l *tcpLink) markDown(gen int) {
	l.mu.Lock()
	if l.closed || l.dead || gen != l.gen || l.conn == nil {
		l.mu.Unlock()
		return
	}
	l.conn.Close()
	l.conn = nil
	if l.ctlConn != nil {
		// The ctl lane shares the main connection's fate: a broken link
		// re-dials both, and ctl traffic rides the main lane until the
		// duplex controller re-dials its own.
		l.ctlConn.Close()
		l.ctlConn = nil
	}
	l.downSince = time.Now()
	l.sent = 0
	startRedial := l.dialer && !l.redialing
	if startRedial {
		l.redialing = true
	}
	l.mu.Unlock()
	if startRedial {
		l.t.wg.Add(1)
		go l.redialLoop()
	}
}

// redialLoop re-establishes a broken connection with exponential backoff,
// bounded by PeerDeadTimeout (the monitor declares the peer dead then).
func (l *tcpLink) redialLoop() {
	defer l.t.wg.Done()
	defer func() {
		l.mu.Lock()
		l.redialing = false
		l.mu.Unlock()
	}()
	backoff := l.t.opts.ReconnectBackoff
	const maxBackoff = 500 * time.Millisecond
	for {
		l.mu.Lock()
		stop := l.closed || l.dead || l.conn != nil
		hole := time.Until(l.blackUntil)
		l.mu.Unlock()
		if stop || l.t.isClosed() {
			return
		}
		if hole > 0 {
			// An injected partition blocks the reconnection handshake too —
			// a partitioned host cannot reach the peer's listener either.
			if hole > 5*time.Millisecond {
				hole = 5 * time.Millisecond
			}
			select {
			case <-l.t.done:
				return
			case <-time.After(hole):
			}
			continue
		}
		conn, err := net.DialTimeout("tcp", l.addr, backoff+50*time.Millisecond)
		if err == nil {
			if herr := l.completeHello(conn, laneData); herr == nil {
				l.install(conn)
				return
			}
			// A stale-epoch refusal keeps backing off like any other failure:
			// the monitor will declare the peer dead when the grace window
			// runs out, which is exactly what a zombie peer deserves.
			conn.Close()
		}
		select {
		case <-l.t.done:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// shutdown closes the link permanently (local Close).
func (l *tcpLink) shutdown() {
	l.mu.Lock()
	l.closed = true
	if l.conn != nil {
		l.conn.Close()
	}
	if l.ctlConn != nil {
		l.ctlConn.Close()
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// tick runs the link's periodic duties: heartbeat emission, retransmission
// on ack stall, heartbeat-miss accounting and peer-death declaration.
func (l *tcpLink) tick(now time.Time) {
	opts := &l.t.opts
	var signal bool
	var deadCause error
	l.mu.Lock()
	if l.closed || l.dead {
		l.mu.Unlock()
		return
	}
	// Heartbeat: keep idle links demonstrably alive.
	if l.conn != nil && now.Sub(l.lastBeat) >= opts.HeartbeatInterval {
		l.hbDue = true
		l.lastBeat = now
		signal = true
	}
	// Heartbeat misses: count silence in heartbeat units (observability).
	if l.conn != nil && now.Sub(l.lastContact) > 2*opts.HeartbeatInterval &&
		now.Sub(l.lastMiss) > 2*opts.HeartbeatInterval {
		l.lastMiss = now
		l.t.stats.recordHeartbeatMiss(l.peer)
	}
	// Retransmission: acks stalled with frames outstanding.
	if l.conn != nil && l.sent > 0 && now.Sub(l.lastAckTime) > opts.RetransmitTimeout {
		l.t.stats.recordRetransmit(l.peer, int64(l.sent))
		l.t.opts.Trace.Instant(trace.CodeRetransmit, int64(l.peer), int64(l.sent))
		l.sent = 0
		l.lastAckTime = now
		signal = true
	}
	// Auto mode re-decision: once measured ack RTTs exist, fold them into
	// the link's packaging mode (hysteresis lives in the cost policy).
	// SetLinkMode pins a link against this.
	var switched P2PMode
	var modeSwitch, dialCtl bool
	if opts.P2PMode == P2PAuto && !l.modeForced && l.rttEWMA > 0 {
		if want := autoDecide(l.rttEWMA.Seconds(), l.mode, opts.AutoRTTSec); want != l.mode {
			l.mode = want
			switched, modeSwitch = want, true
			signal = true
		}
	}
	// Duplex ctl lane: the dialing side brings it up lazily (and back up
	// after a break), paced by a backoff so a refusing peer costs little.
	if l.mode == P2PDuplex && l.dialer && l.conn != nil && l.ctlConn == nil &&
		!l.ctlDialing && now.After(l.nextCtlDial) {
		l.ctlDialing = true
		l.nextCtlDial = now.Add(4 * opts.ReconnectBackoff)
		dialCtl = true
	}
	// Death: silent past the grace window (connected-but-mute or
	// disconnected with every reconnection attempt failed).
	if now.Sub(l.lastContact) > opts.PeerDeadTimeout {
		l.dead = true
		if l.conn != nil {
			l.conn.Close()
			l.conn = nil
		}
		if l.ctlConn != nil {
			l.ctlConn.Close()
			l.ctlConn = nil
		}
		if l.downSince.IsZero() {
			deadCause = fmt.Errorf("no traffic for %v", opts.PeerDeadTimeout)
		} else {
			deadCause = fmt.Errorf("disconnected %v, reconnection failed", now.Sub(l.downSince).Round(time.Millisecond))
		}
	}
	l.mu.Unlock()
	if modeSwitch {
		l.t.stats.recordLinkMode(l.peer, switched)
		l.t.stats.recordModeSwitch(l.peer)
		l.t.opts.Trace.Instant(trace.CodeModeSwitch, int64(l.peer), int64(switched))
	}
	if deadCause != nil {
		l.cond.Broadcast()
		l.t.peerDead(l.peer, deadCause)
		return
	}
	if dialCtl {
		l.t.wg.Add(1)
		go l.dialCtlLane()
	}
	if signal {
		l.cond.Broadcast()
	}
}

// writeLoop is the link's single writer: it drains control frames (acks,
// heartbeats) and unsent data frames onto the current connection. Data
// frames are encoded here — outside the link lock and off the compute
// thread — and the whole batch (control + data) goes out as a single
// net.Buffers writev, one syscall per burst instead of one per frame. The
// chaos injector, when armed, takes the per-frame path instead so its
// write-count-keyed fault decisions stay deterministic.
func (l *tcpLink) writeLoop() {
	defer l.t.wg.Done()
	for {
		l.mu.Lock()
		for {
			if l.closed || l.dead {
				break
			}
			// When the duplex ctl lane is live, ctl frames are the ctl
			// writer's job — this loop neither claims nor waits on them.
			ctlLane := l.ctlConn != nil && l.mode == P2PDuplex
			if l.conn != nil && (((l.ackDirty || l.hbDue) && !ctlLane) ||
				(l.sent < len(l.sendq) && l.sent < l.window)) {
				break
			}
			l.cond.Wait()
		}
		if l.closed || l.dead {
			// Unencoded payloads still own pool buffers; give them back.
			for _, f := range l.sendq {
				if f.wire == nil && f.payload != nil {
					Release(f.payload)
					f.payload = nil
				}
			}
			l.mu.Unlock()
			return
		}
		if hole := time.Until(l.blackUntil); hole > 0 {
			// Injected partition: nothing leaves the link — no data, no acks,
			// no heartbeats. Dirty flags stay set so the backlog drains the
			// moment the window closes.
			l.mu.Unlock()
			if hole > 5*time.Millisecond {
				hole = 5 * time.Millisecond
			}
			time.Sleep(hole)
			continue
		}
		conn, gen := l.conn, l.gen
		mode := l.mode
		epoch := l.t.opts.Epoch
		var batch net.Buffers
		if l.ctlConn == nil || mode != P2PDuplex {
			if l.ackDirty {
				l.ackDirty = false
				batch = append(batch, encodeCtlFrame(l.t.rank, ctlAck, epoch, int64(l.rexpect-1)))
			}
			if l.hbDue {
				l.hbDue = false
				batch = append(batch, encodeCtlFrame(l.t.rank, ctlHeartbeat, epoch, 0))
			}
		}
		var frames []*outFrame
		quiet := time.Until(l.quietUntil)
		if quiet <= 0 {
			for l.sent < len(l.sendq) && l.sent < l.window {
				frames = append(frames, l.sendq[l.sent])
				l.sent++
			}
			if len(frames) > 0 && l.probeSeq == 0 {
				// Arm the RTT probe on the last frame of this flush: the
				// cumulative ack covering it closes the sample (see
				// handleAckLocked).
				l.probeSeq = frames[len(frames)-1].seq
				l.probeAt = time.Now()
			}
		}
		l.mu.Unlock()

		// Lazy encode: only this goroutine touches payload/wire after
		// enqueue, so no lock is needed. A retransmitted frame is already
		// encoded and reused as-is (possibly in a different burst grouping —
		// harmless, envelopes carry no sequence state of their own).
		for _, f := range frames {
			if f.wire == nil {
				f.wire = encodeFrame(l.t.rank, kindField(f.tag.Kind, f.codec), epoch,
					int64(f.tag.A), int64(f.tag.B), f.seq, f.codec, f.payload)
				Release(f.payload)
				f.payload = nil
			}
		}

		maxElems := l.t.opts.MaxPayloadElems
		broken := false
		switch {
		case l.t.opts.Chaos != nil:
			// Per-write chaos: ctl frames go plain (the injector only rolls
			// on data writes), data goes frame-per-write or burst-per-write
			// so the injector's write ordinals stay deterministic for a
			// given traffic pattern.
			for _, w := range batch {
				if _, err := conn.Write(w); err != nil {
					broken = true
					break
				}
			}
			if !broken && mode == P2PBatched && len(frames) > 0 {
				wires := make([][]byte, len(frames))
				for i, f := range frames {
					wires[i] = f.wire
				}
				for _, run := range splitBursts(maxElems, wires) {
					l.t.stats.recordBurst(l.peer, len(run))
					l.t.stats.recordWireWrite(l.peer)
					if err := l.writeData(conn, flattenBurst(l.t.rank, epoch, run)); err != nil {
						broken = true
						break
					}
				}
			} else if !broken {
				for _, f := range frames {
					l.t.stats.recordWireWrite(l.peer)
					if err := l.writeData(conn, f.wire); err != nil {
						broken = true
						break
					}
				}
			}
		case mode == P2PBatched && len(batch)+len(frames) > 0:
			// Batched mode: everything this flush made ready — the belt's
			// same-tick weight + gradient chunks and any pending ctl frames
			// — travels inside burst envelopes, one writev for the lot.
			wires := make([][]byte, 0, len(batch)+len(frames))
			for _, w := range batch {
				wires = append(wires, w)
			}
			for _, f := range frames {
				wires = append(wires, f.wire)
			}
			var out net.Buffers
			for _, run := range splitBursts(maxElems, wires) {
				total := 0
				for _, w := range run {
					total += len(w)
				}
				out = append(out, encodeBurstHeader(l.t.rank, epoch, len(run), total))
				out = append(out, run...)
				l.t.stats.recordBurst(l.peer, len(run))
			}
			l.t.stats.recordWireWrite(l.peer)
			if _, err := out.WriteTo(conn); err != nil {
				broken = true
			}
		default:
			for _, f := range frames {
				batch = append(batch, f.wire)
			}
			if len(batch) > 0 {
				l.t.stats.recordWireWrite(l.peer)
				if _, err := batch.WriteTo(conn); err != nil {
					broken = true
				}
			}
		}
		if broken {
			l.markDown(gen)
			continue
		}
		if quiet > 0 {
			// Data is pending but held back post-reconnect; nobody will
			// signal when the window expires, so sleep it off and re-check.
			time.Sleep(quiet)
		}
	}
}

// ctlWriteLoop is the duplex mode's second writer: while the ctl lane is
// live it owns the link's ack/heartbeat flags, so a bulk data write
// blocked on the main connection can never delay the ack that retires the
// peer's retransmit queue — the head-of-line independence duplex mode
// promises. When the lane is down (or the link is in another mode) the
// loop sleeps and the main writeLoop carries ctl traffic as always.
func (l *tcpLink) ctlWriteLoop() {
	defer l.t.wg.Done()
	for {
		l.mu.Lock()
		for {
			if l.closed || l.dead {
				l.mu.Unlock()
				return
			}
			if l.ctlConn != nil && l.mode == P2PDuplex && (l.ackDirty || l.hbDue) {
				break
			}
			l.cond.Wait()
		}
		if hole := time.Until(l.blackUntil); hole > 0 {
			// Injected partitions silence the ctl lane too.
			l.mu.Unlock()
			if hole > 5*time.Millisecond {
				hole = 5 * time.Millisecond
			}
			time.Sleep(hole)
			continue
		}
		conn, gen := l.ctlConn, l.ctlGen
		epoch := l.t.opts.Epoch
		var batch net.Buffers
		if l.ackDirty {
			l.ackDirty = false
			batch = append(batch, encodeCtlFrame(l.t.rank, ctlAck, epoch, int64(l.rexpect-1)))
		}
		if l.hbDue {
			l.hbDue = false
			batch = append(batch, encodeCtlFrame(l.t.rank, ctlHeartbeat, epoch, 0))
		}
		l.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		n := len(batch)
		if _, err := batch.WriteTo(conn); err != nil {
			l.dropCtlLane(gen)
			continue
		}
		l.t.stats.recordCtlLane(l.peer, n)
	}
}

var errChaosReset = errors.New("comm: chaos connection reset")

// writeData writes one data frame, applying the chaos injector when
// configured. Chaos faults never surface to the application: a dropped or
// corrupted frame stays unacknowledged and is retransmitted; a reset breaks
// the connection, which reconnects and retransmits.
func (l *tcpLink) writeData(conn net.Conn, wire []byte) error {
	ch := l.t.opts.Chaos
	if ch == nil {
		_, err := conn.Write(wire)
		return err
	}
	n := l.chaosN
	l.chaosN++

	// Release a previously held frame after this one (the reorder swap).
	var held []byte
	held, l.chaosHeld = l.chaosHeld, nil

	roll := func(lane uint64) float64 { return faultRoll(ch.Seed, l.t.rank, l.peer, n, lane) }
	if ch.DelayProb > 0 && ch.MaxDelay > 0 && roll(3) < ch.DelayProb {
		time.Sleep(time.Duration(roll(4) * float64(ch.MaxDelay)))
	}
	reset := ch.ResetEvery > 0 && (n+1)%uint64(ch.ResetEvery) == 0

	switch {
	case ch.Drop > 0 && roll(0) < ch.Drop:
		// dropped: pretend success; retransmission recovers it
	case ch.Reorder > 0 && roll(2) < ch.Reorder && !reset:
		l.chaosHeld = wire
	case ch.Corrupt > 0 && roll(5) < ch.Corrupt && len(wire) > frameHeaderLen:
		bad := make([]byte, len(wire))
		copy(bad, wire)
		off := frameHeaderLen + int(roll(6)*float64(len(wire)-frameHeaderLen))
		bad[off] ^= 0x40
		if _, err := conn.Write(bad); err != nil {
			return err
		}
	default:
		if _, err := conn.Write(wire); err != nil {
			return err
		}
		if ch.Dup > 0 && roll(1) < ch.Dup {
			if _, err := conn.Write(wire); err != nil {
				return err
			}
		}
	}
	if held != nil {
		if _, err := conn.Write(held); err != nil {
			return err
		}
	}
	if reset {
		conn.Close()
		return errChaosReset
	}
	return nil
}

// installCtl adopts a duplex ctl-lane connection (the acceptor side gets
// it from acceptLoop, the dialer side from dialCtlLane) and spawns its
// read loop. Accepting is unconditional: the lane is the dialer's mode
// decision.
func (l *tcpLink) installCtl(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	l.mu.Lock()
	if l.closed || l.dead {
		l.mu.Unlock()
		conn.Close()
		return
	}
	if l.ctlConn != nil {
		l.ctlConn.Close() // replaced by a fresher lane
	}
	l.ctlGen++
	gen := l.ctlGen
	l.ctlConn = conn
	l.mu.Unlock()
	l.t.wg.Add(1)
	go l.ctlReadLoop(conn, gen)
	l.cond.Broadcast()
}

// dropCtlLane retires a broken ctl-lane connection (ignoring stale
// generations). Ctl traffic falls back to the main connection — the
// baseline protocol, always correct — and the dialer's tick re-dials the
// lane with backoff while the link stays in duplex mode.
func (l *tcpLink) dropCtlLane(gen int) {
	l.mu.Lock()
	if gen != l.ctlGen || l.ctlConn == nil {
		l.mu.Unlock()
		return
	}
	l.ctlConn.Close()
	l.ctlConn = nil
	if l.rexpect > 1 {
		// An ack claimed by the ctl writer may have died with the lane;
		// re-arm it so the main lane re-sends. A duplicate ack is harmless.
		l.ackDirty = true
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// dialCtlLane runs the dialer side of a ctl-lane bring-up (one attempt;
// tick paces retries via nextCtlDial).
func (l *tcpLink) dialCtlLane() {
	defer l.t.wg.Done()
	defer func() {
		l.mu.Lock()
		l.ctlDialing = false
		l.mu.Unlock()
	}()
	conn, err := net.DialTimeout("tcp", l.addr, 250*time.Millisecond)
	if err != nil {
		return
	}
	if err := l.completeHello(conn, laneCtl); err != nil {
		conn.Close()
		return
	}
	l.installCtl(conn)
}

// readLoop dispatches the main connection's incoming frames until it
// breaks.
func (l *tcpLink) readLoop(conn net.Conn, gen int) {
	defer l.t.wg.Done()
	l.runReadLoop(conn, func() { l.markDown(gen) })
}

// ctlReadLoop dispatches the ctl lane's incoming frames (the peer's acks
// and heartbeats when it also runs duplex) until the lane breaks. A lane
// break only drops the lane, never the link.
func (l *tcpLink) ctlReadLoop(conn net.Conn, gen int) {
	defer l.t.wg.Done()
	l.runReadLoop(conn, func() { l.dropCtlLane(gen) })
}

// runReadLoop dispatches one connection's incoming frames until it breaks,
// then invokes down. The frameReader makes the receive side mode-agnostic:
// plain frames, burst envelopes, and ctl traffic interleave freely on any
// lane, whatever this side's configured mode — which is what keeps every
// mode (and every mid-run mode switch) bit-identical: all payloads funnel
// through the same sequence/dedup/mailbox path below.
func (l *tcpLink) runReadLoop(conn net.Conn, down func()) {
	fr := &frameReader{r: conn, size: l.t.size, maxElems: l.t.opts.MaxPayloadElems}
	defer fr.drop()
	for {
		h, payload, synced, err := fr.next()
		if err != nil {
			if synced && errors.Is(err, ErrCorrupt) {
				// frame discarded, stream still aligned: the sender will
				// retransmit when the ack fails to advance
				l.t.stats.recordCorrupt(l.peer)
				continue
			}
			down()
			return
		}
		if h.epoch != l.t.opts.Epoch {
			// Stale-epoch frame: a sender from another cluster incarnation.
			// Drop it without acknowledging and — critically — without
			// refreshing lastContact: a zombie segment must not be able to
			// keep itself "alive" here, or the fenced-off rank would never
			// be declared dead and the repaired ring would stall on it.
			if payload != nil {
				Release(payload)
			}
			l.t.stats.recordStaleEpoch(l.peer)
			continue
		}
		l.mu.Lock()
		l.lastContact = time.Now()
		switch {
		case h.kind == ctlHeartbeat:
			l.mu.Unlock()
		case h.kind == ctlAck:
			l.handleAckLocked(uint64(h.a))
			l.mu.Unlock()
			l.cond.Broadcast() // ack progress may have opened the send window
		default:
			l.handleDataLocked(h, payload)
			l.mu.Unlock()
			l.cond.Broadcast() // an ack is now dirty
		}
	}
}

// handleAckLocked retires acknowledged frames (cumulative up to upTo) and
// closes the RTT probe when the ack covers it.
func (l *tcpLink) handleAckLocked(upTo uint64) {
	if l.probeSeq != 0 && upTo >= l.probeSeq {
		// One probe in flight at a time; a retransmitted probe inflates
		// the sample, which is the right bias — a lossy link should look
		// slow to the auto controller.
		sample := time.Since(l.probeAt)
		if l.rttEWMA == 0 {
			l.rttEWMA = sample
		} else {
			l.rttEWMA = (3*l.rttEWMA + sample) / 4
		}
		l.probeSeq = 0
		l.t.stats.recordLinkRTT(l.peer, l.rttEWMA)
	}
	popped := 0
	for len(l.sendq) > 0 && l.sendq[0].seq <= upTo {
		l.sendq = l.sendq[1:]
		popped++
	}
	if popped > 0 {
		l.sent -= popped
		if l.sent < 0 {
			l.sent = 0
		}
		l.lastAckTime = time.Now()
	}
}

// handleDataLocked runs the receive-side of the reliability protocol:
// discard duplicates, buffer out-of-order frames, deliver in sequence
// order, and mark a cumulative ack due.
func (l *tcpLink) handleDataLocked(h frameHeader, payload []float32) {
	if h.seq < l.rexpect {
		l.t.stats.recordDup(l.peer)
		Release(payload)
		l.ackDirty = true // re-ack so the sender stops retransmitting
		return
	}
	if _, dup := l.ooo[h.seq]; dup {
		l.t.stats.recordDup(l.peer)
		Release(payload)
		l.ackDirty = true
		return
	}
	l.ooo[h.seq] = oooMsg{tag: h.tag(), payload: payload}
	for {
		msg, ok := l.ooo[l.rexpect]
		if !ok {
			break
		}
		delete(l.ooo, l.rexpect)
		l.rexpect++
		l.t.box.deliver(msgKey{src: l.peer, tag: msg.tag}, msg.payload)
	}
	l.ackDirty = true
}

var _ Transport = (*TCPTransport)(nil)
