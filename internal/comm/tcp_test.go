package comm

import (
	"sync"
	"testing"
)

// dialMesh brings up an n-rank TCP mesh on loopback.
func dialMesh(t *testing.T, n int) []*TCPTransport {
	t.Helper()
	addrs, err := LoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*TCPTransport, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = DialTCP(r, addrs)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

func TestTCPSendRecv(t *testing.T) {
	trs := dialMesh(t, 3)
	go trs[0].Send(2, Tag{Kind: KindGrad, A: 1, B: 2}, []float32{1.5, -2.5})
	got, err := trs[2].Recv(0, Tag{Kind: KindGrad, A: 1, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1.5 || got[1] != -2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestTCPEmptyPayload(t *testing.T) {
	trs := dialMesh(t, 2)
	trs[1].Send(0, Tag{Kind: KindCtl, A: 9}, nil)
	got, err := trs[0].Recv(1, Tag{Kind: KindCtl, A: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestTCPNegativeTagFields(t *testing.T) {
	trs := dialMesh(t, 2)
	trs[0].Send(1, Tag{Kind: KindColl, A: -3, B: -1}, []float32{4})
	got, err := trs[1].Recv(0, Tag{Kind: KindColl, A: -3, B: -1})
	if err != nil || got[0] != 4 {
		t.Fatalf("negative tags: %v %v", got, err)
	}
}

func TestTCPSelfSend(t *testing.T) {
	trs := dialMesh(t, 2)
	trs[1].Send(1, Tag{A: 4}, []float32{3})
	got, err := trs[1].Recv(1, Tag{A: 4})
	if err != nil || got[0] != 3 {
		t.Fatalf("self send: %v %v", got, err)
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	trs := dialMesh(t, 2)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			trs[0].Send(1, Tag{Kind: KindAct}, []float32{float32(i)})
		}
	}()
	for i := 0; i < n; i++ {
		got, err := trs[1].Recv(0, Tag{Kind: KindAct})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != float32(i) {
			t.Fatalf("order broken at %d: %v", i, got[0])
		}
	}
}

func TestTCPCollectivesWork(t *testing.T) {
	trs := dialMesh(t, 4)
	var wg sync.WaitGroup
	results := make([][]float32, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			data := []float32{float32(r), float32(r * 2), float32(r * 3), 1, 1}
			if err := RingAllReduceSum(trs[r], data, 11); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = data
		}(r)
	}
	wg.Wait()
	want := []float32{6, 12, 18, 4, 4}
	for r := 0; r < 4; r++ {
		for i := range want {
			if results[r][i] != want[i] {
				t.Fatalf("rank %d elem %d: got %v want %v", r, i, results[r][i], want[i])
			}
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	trs := dialMesh(t, 2)
	big := make([]float32, 1<<18) // 1 MiB
	for i := range big {
		big[i] = float32(i % 997)
	}
	go trs[0].Send(1, Tag{Kind: KindWeight, A: 7}, big)
	got, err := trs[1].Recv(0, Tag{Kind: KindWeight, A: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range big {
		if got[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}
