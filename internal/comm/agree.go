package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Transport-level membership agreement. AgreeMembership (membership.go)
// merges observation sets that are already in one process; this file gets
// the observations across processes, over the same lossy, retransmitting
// links the failure happened on.
//
// The protocol is synchronous-round evidence flooding. Every participant
// runs exactly oldSize rounds; in round r it broadcasts its current
// suspected-dead set to every peer it does not suspect, then collects the
// round-r evidence of every such peer, folding what it hears into its own
// set. A peer that produces nothing within the round deadline — or whose
// link the failure detector has condemned — joins the suspected set.
// Fixed round count keeps participants aligned: nobody stops early and
// strands a peer waiting for a round that will never be sent. With crash
// and partition faults only, oldSize rounds give every chain of evidence
// time to reach every survivor, so the survivors of one partition side
// converge on the same dead set; the harvest layer above additionally
// cross-checks a hash of the agreed set and aborts to checkpoint restart
// on any residual divergence — agreement failures are safe, never silent.
//
// Two guards make the outcome safe under partition:
//
//   - Quorum: a result whose survivor set is not a strict majority of the
//     old world returns ErrNoQuorum. Of two segments of a partitioned
//     ring, at most one can hold a majority, so at most one continues —
//     an exact half/half split aborts both (checkpoint restart), which is
//     safe. Epoch fencing at the transport then keeps the losing
//     segment's frames out of the winner's rebuilt mesh.
//   - Eviction: evidence naming the local rank means some survivor's
//     detector condemned *us* and the majority may repair around us; the
//     local rank gets ErrEvicted and must abort to standby.

// Evidence is one rank's suspected-dead set at one round of the exchange.
type Evidence struct {
	// Epoch is the cluster incarnation the evidence belongs to.
	Epoch uint32
	// OldSize is the world size the failure hit.
	OldSize int
	// Round is the flooding round (0-based).
	Round int
	// From is the reporting rank.
	From int
	// Dead is the reporter's suspected-dead set: sorted, deduplicated,
	// every entry in [0, OldSize).
	Dead []int
}

// Evidence wire format (little-endian):
//
//	magic "ME" | version u8 | pad u8 | epoch u32 | oldSize u16 | round u16 |
//	from u16 | nDead u16 | dead nDead×u16 (strictly increasing)
const (
	evidenceMagic0  = 'M'
	evidenceMagic1  = 'E'
	evidenceVersion = 1
	evidenceFixed   = 2 + 1 + 1 + 4 + 2 + 2 + 2 + 2

	// maxEvidenceWorld bounds the world size the codec accepts; it exists
	// to keep a fuzzer (or a corrupted length) from driving allocations,
	// not as a deployment limit.
	maxEvidenceWorld = 1 << 14
)

// EncodeEvidence serialises ev. It panics on structurally invalid input
// (the encoder is always fed locally-built values).
func EncodeEvidence(ev Evidence) []byte {
	if ev.OldSize <= 0 || ev.OldSize > maxEvidenceWorld {
		panic(fmt.Sprintf("comm: evidence world size %d out of range", ev.OldSize))
	}
	buf := make([]byte, evidenceFixed+2*len(ev.Dead))
	buf[0], buf[1], buf[2] = evidenceMagic0, evidenceMagic1, evidenceVersion
	binary.LittleEndian.PutUint32(buf[4:8], ev.Epoch)
	binary.LittleEndian.PutUint16(buf[8:10], uint16(ev.OldSize))
	binary.LittleEndian.PutUint16(buf[10:12], uint16(ev.Round))
	binary.LittleEndian.PutUint16(buf[12:14], uint16(ev.From))
	binary.LittleEndian.PutUint16(buf[14:16], uint16(len(ev.Dead)))
	for i, r := range ev.Dead {
		binary.LittleEndian.PutUint16(buf[evidenceFixed+2*i:], uint16(r))
	}
	return buf
}

// DecodeEvidence parses and validates an evidence record. Every failure
// is an error — the decoder never panics and never trusts a length field.
func DecodeEvidence(b []byte) (Evidence, error) {
	if len(b) < evidenceFixed {
		return Evidence{}, fmt.Errorf("comm: evidence truncated (%d bytes)", len(b))
	}
	if b[0] != evidenceMagic0 || b[1] != evidenceMagic1 {
		return Evidence{}, fmt.Errorf("comm: evidence bad magic %#x%x", b[0], b[1])
	}
	if b[2] != evidenceVersion {
		return Evidence{}, fmt.Errorf("comm: evidence version %d unsupported", b[2])
	}
	if b[3] != 0 {
		// The pad byte must be zero or the encoding is not canonical: one
		// evidence value must have exactly one wire form.
		return Evidence{}, fmt.Errorf("comm: evidence nonzero pad byte %#x", b[3])
	}
	ev := Evidence{
		Epoch:   binary.LittleEndian.Uint32(b[4:8]),
		OldSize: int(binary.LittleEndian.Uint16(b[8:10])),
		Round:   int(binary.LittleEndian.Uint16(b[10:12])),
		From:    int(binary.LittleEndian.Uint16(b[12:14])),
	}
	n := int(binary.LittleEndian.Uint16(b[14:16]))
	if ev.OldSize <= 0 || ev.OldSize > maxEvidenceWorld {
		return Evidence{}, fmt.Errorf("comm: evidence world size %d out of range", ev.OldSize)
	}
	if ev.From < 0 || ev.From >= ev.OldSize {
		return Evidence{}, fmt.Errorf("comm: evidence from-rank %d out of world %d", ev.From, ev.OldSize)
	}
	if n > ev.OldSize {
		return Evidence{}, fmt.Errorf("comm: evidence dead count %d exceeds world %d", n, ev.OldSize)
	}
	if len(b) != evidenceFixed+2*n {
		return Evidence{}, fmt.Errorf("comm: evidence length %d != %d", len(b), evidenceFixed+2*n)
	}
	prev := -1
	for i := 0; i < n; i++ {
		r := int(binary.LittleEndian.Uint16(b[evidenceFixed+2*i:]))
		if r >= ev.OldSize {
			return Evidence{}, fmt.Errorf("comm: evidence dead rank %d out of world %d", r, ev.OldSize)
		}
		if r <= prev {
			return Evidence{}, fmt.Errorf("comm: evidence dead set not strictly increasing at %d", r)
		}
		prev = r
		ev.Dead = append(ev.Dead, r)
	}
	return ev, nil
}

// PackBytes bit-casts a byte string into a []float32 payload so it can
// ride any Transport: word 0 carries the byte length, each following word
// carries 4 bytes. The cast is exact — Go float loads/stores and the f32
// wire codec preserve every bit pattern, including NaNs — and control-
// kind payloads are never bf16-narrowed by the belt codec.
func PackBytes(b []byte) []float32 {
	out := make([]float32, 1+(len(b)+3)/4)
	out[0] = math.Float32frombits(uint32(len(b)))
	var word [4]byte
	for i := 1; i < len(out); i++ {
		off := (i - 1) * 4
		word = [4]byte{}
		copy(word[:], b[off:])
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(word[:]))
	}
	return out
}

// UnpackBytes reverses PackBytes, validating the length word.
func UnpackBytes(p []float32) ([]byte, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("comm: packed bytes: empty payload")
	}
	n := int(math.Float32bits(p[0]))
	if n < 0 || (n+3)/4 != len(p)-1 {
		return nil, fmt.Errorf("comm: packed bytes: length %d inconsistent with %d words", n, len(p)-1)
	}
	out := make([]byte, (len(p)-1)*4)
	for i := 1; i < len(p); i++ {
		binary.LittleEndian.PutUint32(out[(i-1)*4:], math.Float32bits(p[i]))
	}
	return out[:n], nil
}

// agreeTagBase reserves a KindCtl tag namespace for the agreement
// protocol, far above any training-loop control tag.
const agreeTagBase = 1 << 30

// agreeTag is the per-(attempt, round) message tag. attempt separates
// successive agreements on the same transport incarnation (a second
// failure during recovery starts a fresh exchange).
func agreeTag(attempt, round int) Tag {
	return Tag{Kind: KindCtl, A: agreeTagBase + attempt, B: round}
}

// AgreeConfig parameterises AgreeOverTransport.
type AgreeConfig struct {
	// Epoch is the current cluster incarnation; evidence from any other
	// epoch aborts the exchange.
	Epoch uint32
	// Attempt separates successive agreement exchanges on one transport.
	Attempt int
	// Deadlines supplies AgreeRound, the per-peer round deadline.
	Deadlines Deadlines
}

// AgreeOverTransport converges the cluster on a membership view after a
// failure, by evidence flooding over t (see the file comment for the
// protocol and its partition guards). initial seeds the local suspected
// set — typically the dead ranks named by *PeerDeadError evidence and
// BeginRecovery. The caller must have called BeginRecovery (or use a
// transport that never wholesale-fails, like the in-process one).
//
// The returned Membership is this rank's final view. The error is nil
// only when the view is actionable: quorum held and the local rank is not
// in the agreed dead set. ErrNoQuorum and ErrEvicted both mean "stop
// training, abort to standby/checkpoint-restart"; any other error means
// the exchange itself failed (local close, stale evidence) and the caller
// must fall back to checkpoint restart.
func AgreeOverTransport(t Transport, initial []int, cfg AgreeConfig) (Membership, error) {
	self, oldSize := t.Rank(), t.Size()
	dl := cfg.Deadlines.WithDefaults()
	suspect := make(map[int]bool, oldSize)
	for _, r := range initial {
		if r >= 0 && r < oldSize && r != self {
			suspect[r] = true
		}
	}
	evicted := false

	for round := 0; round < oldSize; round++ {
		ev := Evidence{Epoch: cfg.Epoch, OldSize: oldSize, Round: round, From: self, Dead: sortedSet(suspect)}
		payload := PackBytes(EncodeEvidence(ev))
		tag := agreeTag(cfg.Attempt, round)

		for peer := 0; peer < oldSize; peer++ {
			if peer == self || suspect[peer] {
				continue
			}
			if err := t.Send(peer, tag, payload); err != nil {
				if r, ok := DeadPeer(err); ok {
					suspect[r] = true
					BeginRecovery(t)
					continue
				}
				return Membership{}, fmt.Errorf("comm: agreement round %d send to %d: %w", round, peer, err)
			}
		}

		for peer := 0; peer < oldSize; peer++ {
			if peer == self || suspect[peer] {
				continue
			}
			// A third peer's death closes the whole mailbox mid-wait; fold
			// the evidence in, reopen, and retry this peer. The retry
			// budget is bounded by the ranks that can still die.
			var pl []float32
			var err error
			for tries := 0; tries <= oldSize; tries++ {
				pl, err = t.RecvTimeout(peer, tag, dl.AgreeRound)
				if err == nil {
					break
				}
				if r, ok := DeadPeer(err); ok {
					suspect[r] = true
					BeginRecovery(t)
					if r == peer {
						break
					}
					continue
				}
				break
			}
			switch {
			case err == nil:
				raw, uerr := UnpackBytes(pl)
				Release(pl)
				if uerr != nil {
					return Membership{}, fmt.Errorf("comm: agreement evidence from %d: %w", peer, uerr)
				}
				got, derr := DecodeEvidence(raw)
				if derr != nil {
					return Membership{}, fmt.Errorf("comm: agreement evidence from %d: %w", peer, derr)
				}
				if got.Epoch != cfg.Epoch || got.OldSize != oldSize || got.Round != round || got.From != peer {
					return Membership{}, fmt.Errorf(
						"comm: agreement evidence mismatch from %d: epoch %d/%d world %d/%d round %d/%d from %d",
						peer, got.Epoch, cfg.Epoch, got.OldSize, oldSize, got.Round, round, got.From)
				}
				for _, r := range got.Dead {
					if r == self {
						evicted = true // someone's detector condemned us
						continue
					}
					suspect[r] = true
				}
			case suspect[peer]:
				// condemned by the detector mid-round; evidence folded above
			case errors.Is(err, ErrTimeout):
				// No evidence within the round deadline: with AgreeRound >
				// PeerDead + retransmit slack, a live peer on a healthy link
				// cannot miss it — suspect the peer.
				suspect[peer] = true
			default:
				// Local close or another non-evidence failure: the exchange
				// itself is broken; abort to checkpoint restart.
				return Membership{}, fmt.Errorf("comm: agreement round %d recv from %d: %w", round, peer, err)
			}
		}
	}

	m := Membership{OldSize: oldSize, Dead: sortedSet(suspect)}
	survivors := oldSize - len(m.Dead)
	if evicted {
		return m, fmt.Errorf("comm: rank %d named dead by surviving peers: %w", self, ErrEvicted)
	}
	if 2*survivors <= oldSize {
		return m, fmt.Errorf("comm: %d of %d survive: %w", survivors, oldSize, ErrNoQuorum)
	}
	return m, nil
}

// sortedSet flattens a rank set into a sorted slice.
func sortedSet(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
