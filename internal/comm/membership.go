package comm

import (
	"errors"
	"sort"
)

// Membership support for elastic repair: when a rank dies, the survivors
// must converge on the same picture of who is gone before the ring can be
// rebuilt. Failure evidence is decentralised — each survivor observes the
// death through its own link (a PeerDeadError naming the peer, or an
// injected crash on the observing rank itself) — so agreement is a pure
// deterministic function of the union of observations, needing no
// coordinator and no extra round of messages beyond what already failed.

// Recoverer is implemented by transports that can transition from
// "failed" (a peer death closed the endpoint, unblocking every parked
// receive) back to "recovering" (the healthy links usable again for the
// membership-agreement and state-harvest exchanges). BeginRecovery
// returns the locally-observed dead set. Wrapper transports forward it.
type Recoverer interface {
	BeginRecovery() []int
}

// BeginRecovery reopens t for recovery traffic when it supports it,
// returning the locally-observed dead set (nil otherwise).
func BeginRecovery(t Transport) []int {
	if r, ok := t.(Recoverer); ok {
		return r.BeginRecovery()
	}
	return nil
}

// DeadPeer extracts the rank a failure implicates, if the error names one:
// a PeerDeadError (heartbeat silence + exhausted reconnection) identifies
// the remote peer. Errors that do not name a peer (ErrClosed, ErrTimeout,
// collateral damage of tearing the cluster down) return ok=false.
func DeadPeer(err error) (rank int, ok bool) {
	var pd *PeerDeadError
	if errors.As(err, &pd) {
		return pd.Rank, true
	}
	return 0, false
}

// Membership is an agreed-upon view of a cluster after failures: the old
// world size and the sorted set of dead old-world ranks.
type Membership struct {
	OldSize int
	Dead    []int // sorted, deduplicated old-world ranks
}

// AgreeMembership merges every survivor's observation set into the
// deterministic membership all of them would independently compute: the
// sorted union of observed-dead ranks. Observations outside [0, oldSize)
// are discarded.
func AgreeMembership(oldSize int, observations ...[]int) Membership {
	seen := make(map[int]bool)
	for _, obs := range observations {
		for _, r := range obs {
			if r >= 0 && r < oldSize {
				seen[r] = true
			}
		}
	}
	dead := make([]int, 0, len(seen))
	for r := range seen {
		dead = append(dead, r)
	}
	sort.Ints(dead)
	return Membership{OldSize: oldSize, Dead: dead}
}

// Survivors lists the live old-world ranks in ascending order.
func (m Membership) Survivors() []int {
	dead := make(map[int]bool, len(m.Dead))
	for _, r := range m.Dead {
		dead[r] = true
	}
	out := make([]int, 0, m.OldSize-len(m.Dead))
	for r := 0; r < m.OldSize; r++ {
		if !dead[r] {
			out = append(out, r)
		}
	}
	return out
}

// IsDead reports whether old-world rank r is in the dead set.
func (m Membership) IsDead(r int) bool {
	for _, d := range m.Dead {
		if d == r {
			return true
		}
	}
	return false
}
