package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
	"weipipe/internal/tensor"
)

// The sweep is the full strategy×topology×scale grid of the cost model:
// every schedule the simulator understands (including the tp/sp
// model-parallel baselines that have no functional runner) on every
// topology family the cluster package models, at three ring sizes. It
// regenerates BENCH_sweep.json, the machine-readable companion to the
// paper tables of EXPERIMENTS.md — the model is deterministic, so the
// file is committed and CI can diff regenerated output against it.

// sweepStrategies is every strategy the cost model and schedule builder
// both accept, in report order ("serial" exists only as a functional
// runner and has no distributed schedule, so it is not swept).
var sweepStrategies = []string{
	"gpipe", "1f1b", "zb1", "zb2", "dp", "fsdp", "tp", "sp",
	"weipipe-naive", "weipipe-interleave", "wzb1", "wzb2", "wzb2g",
}

// sweepScales are the ring sizes of the grid; divisibility (L%P, N%P)
// holds for all of them under sweepWorkload. The 64-rank row set is the
// grouped-belt scaling point: every topology family is hierarchical there
// (16 servers of 4, or two 32-rank clusters), so it is where wzb2g's
// boundary-traffic dedup has the most links to save.
var sweepScales = []int{4, 8, 16, 64}

// sweepTopologies names the topology families with their constructors.
var sweepTopologies = []struct {
	Name  string
	Build func(p int) cluster.Topology
}{
	{"nvlink-single", cluster.NVLinkSingle},
	{"nvlink-2cluster", cluster.NVLinkTwoClusters},
	{"pcie-ethernet", func(p int) cluster.Topology { return cluster.PCIeEthernet(p, 4) }},
	{"nvlink-ethernet", func(p int) cluster.Topology { return cluster.NVLinkEthernet(p, 4) }},
}

// sweepWorkload is the paper's base configuration (Table 2's first
// column): 7B-ish shape at 4k context, scaled to p workers. Beyond 32
// workers the base shape no longer divides (L%P, N%P), so layers and
// microbatches grow with the ring — the scaling regime of the paper's
// Figures 6–9; LayersAt/MicrobatchesAt in the report record the actual
// values per scale.
func sweepWorkload(p int) cost.Workload {
	l, n := 32, 16
	if p > l {
		l = p
	}
	if p > n {
		n = p
	}
	return cost.Workload{H: 4096, S: 4096, G: 1, L: l, N: n, P: p, Recompute: true}.WithDefaults()
}

// SweepCell is one grid point of the sweep report.
type SweepCell struct {
	Strategy      string  `json:"strategy"`
	Topology      string  `json:"topology"`
	Workers       int     `json:"workers"`
	ThroughputTPS float64 `json:"throughput_tps"`
	MemoryGB      float64 `json:"memory_gb"`
	BubbleRatio   float64 `json:"bubble_ratio"`
	OOM           bool    `json:"oom"`
}

// SweepReport is the serialised sweep. The header records the environment
// that produced the numbers; KernelBackend stamps which tensor backend
// was active (the cost model itself does no tensor math, so the stamp
// documents provenance for mixed reports that join sweep and functional
// kernel numbers).
type SweepReport struct {
	KernelBackend  string      `json:"kernel_backend"`
	KernelExact    bool        `json:"kernel_exact"`
	GoArch         string      `json:"goarch"`
	Hidden         int         `json:"hidden"`
	SeqLen         int         `json:"seq_len"`
	Layers         int         `json:"layers"`
	LayersAt       map[int]int `json:"layers_at_p,omitempty"`
	MicrobatchesAt map[int]int `json:"microbatches_at_p,omitempty"`
	Cells          []SweepCell `json:"cells"`
}

// RunSweep evaluates the full grid.
func RunSweep() (*SweepReport, error) {
	base := sweepWorkload(sweepScales[0])
	rep := &SweepReport{
		KernelBackend:  tensor.BackendName(),
		KernelExact:    tensor.BackendExact(),
		GoArch:         runtime.GOARCH,
		Hidden:         base.H,
		SeqLen:         base.S,
		Layers:         base.L,
		LayersAt:       make(map[int]int),
		MicrobatchesAt: make(map[int]int),
	}
	for _, p := range sweepScales {
		rep.LayersAt[p] = sweepWorkload(p).L
		rep.MicrobatchesAt[p] = sweepWorkload(p).N
	}
	for _, p := range sweepScales {
		w := sweepWorkload(p)
		for _, top := range sweepTopologies {
			t := top.Build(p)
			for _, s := range sweepStrategies {
				cell, err := RunCell(s, w, t)
				if err != nil {
					return nil, fmt.Errorf("sweep %s/%s/p=%d: %w", s, top.Name, p, err)
				}
				rep.Cells = append(rep.Cells, SweepCell{
					Strategy: s, Topology: top.Name, Workers: p,
					ThroughputTPS: cell.ThroughputTPS, MemoryGB: cell.MemoryGB,
					BubbleRatio: cell.BubbleRatio, OOM: cell.OOM,
				})
			}
		}
	}
	return rep, nil
}

// WriteSweep runs the grid and writes BENCH_sweep.json (or path), echoing
// a per-topology winner summary to stdout.
func WriteSweep(path string) error {
	rep, err := RunSweep()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep: %d cells (%d strategies × %d topologies × %d scales), backend %s\n",
		len(rep.Cells), len(sweepStrategies), len(sweepTopologies), len(sweepScales), rep.KernelBackend)
	type key struct {
		top string
		p   int
	}
	best := make(map[key]SweepCell)
	for _, c := range rep.Cells {
		k := key{c.Topology, c.Workers}
		if !c.OOM && c.ThroughputTPS > best[k].ThroughputTPS {
			best[k] = c
		}
	}
	keys := make([]key, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].top != keys[j].top {
			return keys[i].top < keys[j].top
		}
		return keys[i].p < keys[j].p
	})
	for _, k := range keys {
		c := best[k]
		fmt.Printf("  %-16s p=%-3d best %-18s %8.0f tok/s/gpu (bubble %4.1f%%)\n",
			k.top, k.p, c.Strategy, c.ThroughputTPS, c.BubbleRatio*100)
	}
	fmt.Printf("  written to %s\n", path)
	return nil
}
