package bench

import (
	"fmt"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
)

// The five strategies the paper's tables report, in the paper's column
// order.
var tableStrategies = []string{"1f1b", "zb1", "zb2", "fsdp", "weipipe-interleave"}

// paperCell carries the paper's measured value for a cell (tokens/s/GPU,
// memory GB; negative throughput marks OOM).
type paperCell struct {
	tps float64
	mem float64
}

var oomCell = paperCell{tps: -1, mem: -1}

// zbWorkload applies the paper's zero-bubble microbatch policy: G=4 at
// S=4096, G=1 for longer sequences (memory limits), and no recomputation.
func zbWorkload(w cost.Workload) cost.Workload {
	w.Recompute = false
	if w.S == 4096 {
		w.G = 4
	} else {
		w.G = 1
	}
	return w
}

// buildRow evaluates every table strategy for one configuration.
func buildRow(label string, w cost.Workload, top cluster.Topology,
	paper map[string]paperCell) (Row, error) {
	row := Row{Label: label, Cells: make(map[string]Cell)}
	for _, s := range tableStrategies {
		wl := w
		if s == "zb1" || s == "zb2" {
			wl = zbWorkload(w)
		}
		cell, err := RunCell(s, wl, top)
		if err != nil {
			return row, fmt.Errorf("%s %s: %w", label, s, err)
		}
		if pc, ok := paper[s]; ok {
			if pc.tps < 0 {
				cell.PaperOOM = true
			} else {
				cell.PaperTPS = pc.tps
				cell.PaperMemGB = pc.mem
			}
		}
		row.Cells[s] = cell
	}
	return row, nil
}

// table2Workload is one row of Table 2: 16 GPUs, 32 layers, 64 microbatches.
func table2Workload(h, s, g int) cost.Workload {
	return cost.Workload{H: h, S: s, G: g, L: 32, N: 64, P: 16, Recompute: true}.WithDefaults()
}

// Table2 regenerates the paper's Table 2: throughput and memory for
// Llama-style models on 16 GPUs in two NVLink clusters.
func Table2() (*Experiment, error) {
	top := cluster.NVLinkTwoClusters(16)
	type rowSpec struct {
		h, s, g int
		paper   map[string]paperCell
	}
	rows := []rowSpec{
		{1024, 4096, 16, map[string]paperCell{
			"1f1b": {8581.7, 13.0}, "zb1": {7547.0, 20.4}, "zb2": {7638.5, 39.3},
			"fsdp": {11525.9, 8.6}, "weipipe-interleave": {15138.8, 9.4}}},
		{1024, 8192, 8, map[string]paperCell{
			"1f1b": {7403.8, 9.9}, "zb1": {6739.6, 10.7}, "zb2": {6768.1, 20.5},
			"fsdp": {9424.4, 8.6}, "weipipe-interleave": {12122.3, 9.4}}},
		{1024, 16384, 4, map[string]paperCell{
			"1f1b": {5641.2, 9.1}, "zb1": {5651.6, 21.6}, "zb2": {5651.9, 42.2},
			"fsdp": {6973.6, 8.6}, "weipipe-interleave": {8188.3, 9.4}}},
		{2048, 4096, 16, map[string]paperCell{
			"1f1b": {4163.2, 18.7}, "zb1": {3823.3, 44.3}, "zb2": oomCell,
			"fsdp": {4104.8, 17.9}, "weipipe-interleave": {6499.7, 19.9}}},
		{2048, 8192, 8, map[string]paperCell{
			"1f1b": {3791.3, 19.6}, "zb1": {3517.8, 22.3}, "zb2": oomCell,
			"fsdp": {3706.8, 17.9}, "weipipe-interleave": {6033.2, 19.9}}},
		{2048, 16384, 4, map[string]paperCell{
			"1f1b": {3146.3, 22.9}, "zb1": {3050.1, 42.9}, "zb2": oomCell,
			"fsdp": {3087.2, 17.9}, "weipipe-interleave": {4607.8, 19.9}}},
		{4096, 4096, 16, map[string]paperCell{
			"1f1b": {1662.7, 40.5}, "zb1": oomCell, "zb2": oomCell,
			"fsdp": {1110.5, 39}, "weipipe-interleave": {2023.1, 44.5}}},
		{4096, 8192, 8, map[string]paperCell{
			"1f1b": {1556.2, 41.6}, "zb1": oomCell, "zb2": oomCell,
			"fsdp": {1063.2, 39}, "weipipe-interleave": {2059.4, 44.5}}},
		{4096, 16384, 4, map[string]paperCell{
			"1f1b": {1331.6, 45.1}, "zb1": oomCell, "zb2": oomCell,
			"fsdp": {944.2, 39}, "weipipe-interleave": {1684.9, 44.5}}},
	}
	e := &Experiment{
		ID:          "table2",
		Title:       "Throughput and memory, 16 GPUs, NVLink clusters (paper Table 2)",
		Description: "Llama-style, L=32, heads=32, N=64 microbatches; ZB strategies use G=4 (S=4096) or G=1.",
		Strategies:  tableStrategies,
		ShowMemory:  true,
	}
	for _, rs := range rows {
		row, err := buildRow(fmt.Sprintf("H=%d S=%d G=%d", rs.h, rs.s, rs.g),
			table2Workload(rs.h, rs.s, rs.g), top, rs.paper)
		if err != nil {
			return nil, err
		}
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

// Table3 regenerates the paper's Table 3: throughput on 16 GPUs with PCIe
// inside clusters and 10 Gb Ethernet between clusters.
func Table3() (*Experiment, error) {
	top := cluster.PCIeEthernet(16, 4)
	type rowSpec struct {
		h, s, g int
		paper   map[string]paperCell
	}
	rows := []rowSpec{
		{1024, 4096, 16, map[string]paperCell{
			"1f1b": {8193, 0}, "zb1": {7708, 0}, "zb2": {7952, 0},
			"fsdp": {11545, 0}, "weipipe-interleave": {13847, 0}}},
		{1024, 16384, 4, map[string]paperCell{
			"1f1b": {5394, 0}, "zb1": {4583, 0}, "zb2": {4630, 0},
			"fsdp": {6764, 0}, "weipipe-interleave": {7551, 0}}},
		{2048, 4096, 16, map[string]paperCell{
			"1f1b": {4030, 0}, "zb1": {3701, 0}, "zb2": oomCell,
			"fsdp": {4205, 0}, "weipipe-interleave": {5587, 0}}},
		{2048, 16384, 4, map[string]paperCell{
			"1f1b": {2907, 0}, "zb1": {2638, 0}, "zb2": oomCell,
			"fsdp": {3150, 0}, "weipipe-interleave": {4151, 0}}},
		{4096, 4096, 16, map[string]paperCell{
			"1f1b": {1530, 0}, "zb1": oomCell, "zb2": oomCell,
			"fsdp": {1186, 0}, "weipipe-interleave": {1402, 0}}},
		{4096, 16384, 4, map[string]paperCell{
			"1f1b": {1232, 0}, "zb1": oomCell, "zb2": oomCell,
			"fsdp": {966, 0}, "weipipe-interleave": {1505, 0}}},
	}
	e := &Experiment{
		ID:          "table3",
		Title:       "Throughput, 16 GPUs, PCIe + 10Gb Ethernet (paper Table 3)",
		Description: "Same models as Table 2 in the communication-constrained environment.",
		Strategies:  tableStrategies,
	}
	for _, rs := range rows {
		row, err := buildRow(fmt.Sprintf("H=%d S=%d G=%d", rs.h, rs.s, rs.g),
			table2Workload(rs.h, rs.s, rs.g), top, rs.paper)
		if err != nil {
			return nil, err
		}
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

// Table4 regenerates the paper's Table 4: 8 GPUs, all-NVLink, 16 layers —
// the regime where conventional methods can beat WeiPipe. (The paper's
// table is only partially legible in our source; the four rows below are
// the unambiguous ones, in kilo-tokens/s/GPU converted to tokens/s.)
func Table4() (*Experiment, error) {
	top := cluster.NVLinkSingle(8)
	type rowSpec struct {
		h, s, g int
		paper   map[string]paperCell
	}
	rows := []rowSpec{
		{1024, 4096, 16, map[string]paperCell{
			"1f1b": {32000, 0}, "zb1": {45800, 0}, "zb2": {46500, 0},
			"fsdp": {37900, 0}, "weipipe-interleave": {31300, 0}}},
		{2048, 16384, 4, map[string]paperCell{
			"1f1b": {15900, 0}, "zb1": {22000, 0}, "zb2": {22100, 0},
			"fsdp": {17800, 0}, "weipipe-interleave": {16900, 0}}},
		{4096, 4096, 16, map[string]paperCell{
			"1f1b": {5200, 0}, "zb1": oomCell, "zb2": oomCell,
			"fsdp": {6000, 0}, "weipipe-interleave": {4900, 0}}},
		{4096, 16384, 4, map[string]paperCell{
			"1f1b": {3700, 0}, "zb1": oomCell, "zb2": oomCell,
			"fsdp": {3800, 0}, "weipipe-interleave": {3600, 0}}},
	}
	e := &Experiment{
		ID:          "table4",
		Title:       "Throughput, 8 GPUs, NVLink only, L=16 (paper Table 4)",
		Description: "High-bandwidth small-scale regime; WeiPipe's advantage shrinks or inverts.",
		Strategies:  tableStrategies,
	}
	for _, rs := range rows {
		w := cost.Workload{H: rs.h, S: rs.s, G: rs.g, L: 16, N: 32, P: 8, Recompute: true}.WithDefaults()
		row, err := buildRow(fmt.Sprintf("H=%d S=%d G=%d", rs.h, rs.s, rs.g), w, top, rs.paper)
		if err != nil {
			return nil, err
		}
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

// Fig5 regenerates the paper's theoretical-analysis figure: throughput and
// bubble behaviour as the activation/weight ratio G·S/(12H) sweeps across
// the crossover, on the Ethernet-joined topology. Row labels carry the
// ratio.
func Fig5() (*Experiment, error) {
	top := cluster.NVLinkEthernet(8, 4)
	e := &Experiment{
		ID:          "fig5",
		Title:       "Activation/weight crossover sweep (paper Fig. 5 analysis)",
		Description: "H=2048, G=4, L=32, P=8; S sweeps the ratio G·S/(12H) across 1.",
		Strategies:  []string{"1f1b", "fsdp", "weipipe-interleave"},
	}
	for _, s := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
		w := cost.Workload{H: 2048, S: s, G: 4, L: 32, N: 32, P: 8, Recompute: true}.WithDefaults()
		row := Row{
			Label: fmt.Sprintf("S=%-5d ratio=%.2f", s, w.WeightRatio()),
			Cells: make(map[string]Cell),
		}
		for _, st := range e.Strategies {
			cell, err := RunCell(st, w, top)
			if err != nil {
				return nil, err
			}
			row.Cells[st] = cell
		}
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

// scalingExperiment builds a weak- or strong-scaling figure.
func scalingExperiment(id, title string, strategies []string, gpus []int, perServer int,
	layers int, microbatches func(p int) int, h, s, g int) (*Experiment, error) {
	e := &Experiment{
		ID:          id,
		Title:       title,
		Description: fmt.Sprintf("H=%d S=%d G=%d L=%d, %d GPUs/server, Ethernet between servers.", h, s, g, layers, perServer),
		Strategies:  strategies,
	}
	for _, p := range gpus {
		top := cluster.NVLinkEthernet(p, perServer)
		row := Row{Label: fmt.Sprintf("P=%d", p), Cells: make(map[string]Cell)}
		for _, st := range strategies {
			w := cost.Workload{H: h, S: s, G: g, L: layers, N: microbatches(p), P: p, Recompute: true}.WithDefaults()
			if st == "zb1" || st == "zb2" {
				w.Recompute = false
			}
			cell, err := RunCell(st, w, top)
			if err != nil {
				return nil, err
			}
			row.Cells[st] = cell
		}
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

// Fig6 regenerates small-scale weak scaling: 4→16 GPUs (4 per server),
// batch 64→256.
func Fig6() (*Experiment, error) {
	return scalingExperiment("fig6",
		"Small-scale weak scaling, 4→16 GPUs, batch 64→256 (paper Fig. 6)",
		tableStrategies, []int{4, 8, 16}, 4, 16,
		func(p int) int { return 16 * p / 4 }, 1024, 8192, 4)
}

// Fig7 regenerates large-scale weak scaling: 8→32 GPUs (8 per server),
// batch 128→512.
func Fig7() (*Experiment, error) {
	return scalingExperiment("fig7",
		"Large-scale weak scaling, 8→32 GPUs, batch 128→512 (paper Fig. 7)",
		[]string{"1f1b", "fsdp", "weipipe-interleave"}, []int{8, 16, 32}, 8, 32,
		func(p int) int { return 32 * p / 8 }, 1024, 8192, 4)
}

// Fig8 regenerates small-scale strong scaling: 4→16 GPUs, batch fixed 128.
func Fig8() (*Experiment, error) {
	return scalingExperiment("fig8",
		"Small-scale strong scaling, 4→16 GPUs, batch fixed 128 (paper Fig. 8)",
		tableStrategies, []int{4, 8, 16}, 4, 16,
		func(int) int { return 32 }, 1024, 8192, 4)
}

// Fig9 regenerates large-scale strong scaling: 8→32 GPUs, batch fixed 256.
func Fig9() (*Experiment, error) {
	return scalingExperiment("fig9",
		"Large-scale strong scaling, 8→32 GPUs, batch fixed 256 (paper Fig. 9)",
		[]string{"1f1b", "fsdp", "weipipe-interleave"}, []int{8, 16, 32}, 8, 32,
		func(int) int { return 64 }, 1024, 8192, 4)
}

// All returns every table/figure experiment in paper order.
func All() ([]*Experiment, error) {
	builders := []func() (*Experiment, error){Fig5, Table2, Table3, Table4, Fig6, Fig7, Fig8, Fig9}
	var out []*Experiment
	for _, b := range builders {
		e, err := b()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
