package bench

import (
	"strings"
	"testing"

	"weipipe/internal/trace"
)

// syntheticTrace builds a deterministic measured trace: 2 ranks × 2 iters,
// 10ms steps containing 2ms F, 1.5ms B, 1ms W, 0.5ms opt and 0.8ms stall.
func syntheticTrace(t *testing.T) []byte {
	t.Helper()
	const ms = int64(1e6)
	set := trace.NewSet(2, 256)
	for r := 0; r < 2; r++ {
		tr := set.Rank(r)
		for iter := int64(0); iter < 2; iter++ {
			base := iter * 20 * ms
			tr.Emit(base, 10*ms, trace.CodeStep, iter, 0)
			tr.Emit(base+1*ms, 2*ms, trace.CodeF, iter, 0)
			tr.Emit(base+3*ms, 3*ms/2, trace.CodeB, iter, 0)
			tr.Emit(base+5*ms, 1*ms, trace.CodeW, iter, 0)
			tr.Emit(base+6*ms, ms/2, trace.CodeOpt, iter, 0)
			tr.Emit(base+7*ms, 8*ms/10, trace.CodeStall, 0, 1)
		}
	}
	blob, err := set.ChromeTrace(&trace.RunMeta{
		Strategy: "wzb2", P: 2, N: 4, Iters: 2,
		Hidden: 1024, Layers: 2, Seq: 4096, Batch: 4, Heads: 16, Vocab: 32000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestCompareTrace(t *testing.T) {
	rep, err := CompareTrace(syntheticTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measured.Ranks != 2 || rep.Measured.Iters != 2 {
		t.Fatalf("measured shape = %d ranks × %d iters", rep.Measured.Ranks, rep.Measured.Iters)
	}
	approx := func(got, want float64) bool { return got > want*0.999 && got < want*1.001 }
	if !approx(rep.Measured.StepSec, 0.010) {
		t.Fatalf("StepSec = %v", rep.Measured.StepSec)
	}
	if !approx(rep.Measured.FSec, 0.002) || !approx(rep.Measured.BSec, 0.0015) ||
		!approx(rep.Measured.WSec, 0.001) || !approx(rep.Measured.OptSec, 0.0005) {
		t.Fatalf("compute totals = %+v", rep.Measured)
	}
	if !approx(rep.Measured.ExposedSec, 0.0008) {
		t.Fatalf("ExposedSec = %v", rep.Measured.ExposedSec)
	}
	// The predicted schedule must be populated and coherent.
	if rep.Simulated.StepSec <= 0 || rep.Simulated.FSec <= 0 {
		t.Fatalf("simulated totals = %+v", rep.Simulated)
	}
	if rep.Bubble < 0 || rep.Bubble >= 1 {
		t.Fatalf("bubble = %v", rep.Bubble)
	}
	if rep.Calibration.EffectiveFLOPS <= 0 {
		t.Fatalf("calibration = %+v", rep.Calibration)
	}
	out := rep.String()
	for _, want := range []string{"compare: wzb2 p=2 n=4", "step", "exposed", "calibration:", "MFU="} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareTraceRejectsMetalessBlob(t *testing.T) {
	set := trace.NewSet(1, 16)
	set.Rank(0).Emit(0, 10, trace.CodeStep, 0, 0)
	blob, err := set.ChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareTrace(blob); err == nil {
		t.Fatal("expected error for trace without run metadata")
	}
}

func TestCompareTraceRejectsGarbage(t *testing.T) {
	if _, err := CompareTrace([]byte("not json")); err == nil {
		t.Fatal("expected parse error")
	}
}
