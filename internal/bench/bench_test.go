package bench

import (
	"strings"
	"testing"
)

// These tests pin the regenerated tables and figures to the paper's
// qualitative results: who wins, by roughly what factor, where the OOMs
// and crossovers fall. Absolute tokens/s are not asserted (our substrate
// is a simulator, not the authors' testbed).

func TestTable2Shape(t *testing.T) {
	e, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Rows) != 9 {
		t.Fatalf("rows = %d", len(e.Rows))
	}
	for _, r := range e.Rows {
		best, _ := r.Best()
		if best != "weipipe-interleave" {
			t.Errorf("%s: best = %s, want weipipe-interleave", r.Label, best)
		}
		wp := r.Cells["weipipe-interleave"]
		_, base := r.BestExcluding("weipipe-interleave")
		adv := wp.ThroughputTPS / base
		if adv < 1.05 || adv > 2.2 {
			t.Errorf("%s: weipipe advantage %.2fx outside the paper's ballpark", r.Label, adv)
		}
		// Against the paper's emphasized baselines the margin is larger.
		if wp.ThroughputTPS < 1.10*r.Cells["fsdp"].ThroughputTPS {
			t.Errorf("%s: weipipe ≤ 1.10× fsdp", r.Label)
		}
		// OOM pattern must match the paper's exactly.
		for s, c := range r.Cells {
			if c.OOM != c.PaperOOM {
				t.Errorf("%s %s: model OOM=%v, paper OOM=%v", r.Label, s, c.OOM, c.PaperOOM)
			}
		}
		// Memory within a factor of the paper's measurement.
		for s, c := range r.Cells {
			if c.PaperMemGB > 0 && !c.OOM {
				if c.MemoryGB < 0.4*c.PaperMemGB || c.MemoryGB > 1.6*c.PaperMemGB {
					t.Errorf("%s %s: memory %.1f GB vs paper %.1f GB", r.Label, s, c.MemoryGB, c.PaperMemGB)
				}
			}
		}
		// FSDP stays the memory floor; WeiPipe close behind.
		if r.Cells["fsdp"].MemoryGB > r.Cells["weipipe-interleave"].MemoryGB {
			t.Errorf("%s: fsdp memory above weipipe", r.Label)
		}
	}
}

func TestTable2WeiPipeMemoryRowInvariant(t *testing.T) {
	// WeiPipe's memory column is constant down each H block (G·S fixed).
	e, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i += 3 {
		a := e.Rows[i].Cells["weipipe-interleave"].MemoryGB
		b := e.Rows[i+2].Cells["weipipe-interleave"].MemoryGB
		if a != b {
			t.Errorf("rows %d/%d: weipipe memory %v != %v", i, i+2, a, b)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	e, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, r := range e.Rows {
		if best, _ := r.Best(); best == "weipipe-interleave" {
			wins++
		}
		// WeiPipe always beats FSDP and 1F1B under Ethernet (paper's
		// strongest claim for this environment).
		wp := r.Cells["weipipe-interleave"].ThroughputTPS
		if wp <= r.Cells["fsdp"].ThroughputTPS || wp <= r.Cells["1f1b"].ThroughputTPS {
			t.Errorf("%s: weipipe %f not above fsdp %f / 1f1b %f", r.Label,
				wp, r.Cells["fsdp"].ThroughputTPS, r.Cells["1f1b"].ThroughputTPS)
		}
		for s, c := range r.Cells {
			if c.OOM != c.PaperOOM {
				t.Errorf("%s %s: model OOM=%v, paper OOM=%v", r.Label, s, c.OOM, c.PaperOOM)
			}
		}
	}
	if wins < len(e.Rows)-1 {
		t.Errorf("weipipe wins only %d of %d rows", wins, len(e.Rows))
	}
}

func TestTable4Shape(t *testing.T) {
	// The honest negative result: on 8 all-NVLink GPUs with L=16, WeiPipe
	// is never the winner.
	e, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Rows {
		if best, _ := r.Best(); best == "weipipe-interleave" {
			t.Errorf("%s: weipipe unexpectedly best on all-NVLink small scale", r.Label)
		}
	}
	// ZB OOM pattern matches at H=4096.
	for _, r := range e.Rows[2:] {
		if !r.Cells["zb1"].OOM || !r.Cells["zb2"].OOM {
			t.Errorf("%s: expected ZB OOM", r.Label)
		}
	}
}

func TestFig5Crossover(t *testing.T) {
	e, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// 1F1B wins at the shortest context, WeiPipe at the longest, and the
	// weipipe/1f1b ratio grows monotonically with S.
	first := e.Rows[0]
	last := e.Rows[len(e.Rows)-1]
	if best, _ := first.Best(); best != "1f1b" {
		t.Errorf("shortest context: best = %s, want 1f1b", best)
	}
	if best, _ := last.Best(); best != "weipipe-interleave" {
		t.Errorf("longest context: best = %s, want weipipe-interleave", best)
	}
	// The weipipe/1f1b ratio grows monotonically up to the crossover region
	// (the final point may flatten once attention FLOPs dominate both).
	prev := 0.0
	for _, r := range e.Rows[:len(e.Rows)-1] {
		ratio := r.Cells["weipipe-interleave"].ThroughputTPS / r.Cells["1f1b"].ThroughputTPS
		if ratio < prev {
			t.Errorf("%s: weipipe/1f1b ratio %.3f fell below previous %.3f", r.Label, ratio, prev)
		}
		prev = ratio
	}
	lastRatio := last.Cells["weipipe-interleave"].ThroughputTPS / last.Cells["1f1b"].ThroughputTPS
	if lastRatio <= 1 {
		t.Errorf("longest context ratio %.3f not above 1", lastRatio)
	}
	firstRatio := first.Cells["weipipe-interleave"].ThroughputTPS / first.Cells["1f1b"].ThroughputTPS
	if firstRatio >= 1 {
		t.Errorf("shortest context ratio %.3f not below 1", firstRatio)
	}
}

func perGPUDecline(e *Experiment, s string) float64 {
	first := e.Rows[0].Cells[s].ThroughputTPS
	last := e.Rows[len(e.Rows)-1].Cells[s].ThroughputTPS
	if first == 0 {
		return 1
	}
	return 1 - last/first
}

func TestWeakScalingShape(t *testing.T) {
	for _, build := range []func() (*Experiment, error){Fig6, Fig7} {
		e, err := build()
		if err != nil {
			t.Fatal(err)
		}
		lastRow := e.Rows[len(e.Rows)-1]
		if best, _ := lastRow.Best(); best != "weipipe-interleave" {
			t.Errorf("%s: best at largest P = %s, want weipipe-interleave", e.ID, best)
		}
		// WeiPipe's per-GPU decline is the smallest among the plotted
		// strategies (the paper's weak-scaling claim).
		wpDecline := perGPUDecline(e, "weipipe-interleave")
		for _, s := range e.Strategies {
			if s == "weipipe-interleave" {
				continue
			}
			if e.Rows[0].Cells[s].OOM || lastRow.Cells[s].OOM {
				continue
			}
			if d := perGPUDecline(e, s); d < wpDecline {
				t.Errorf("%s: %s declines %.1f%% < weipipe %.1f%%", e.ID, s, d*100, wpDecline*100)
			}
		}
	}
}

func TestStrongScalingShape(t *testing.T) {
	for _, build := range []func() (*Experiment, error){Fig8, Fig9} {
		e, err := build()
		if err != nil {
			t.Fatal(err)
		}
		// Total WeiPipe throughput must grow with P (speedup on a fixed
		// batch), and WeiPipe must lead at the largest scale.
		var prevTotal float64
		for i, r := range e.Rows {
			p := []int{0, 0, 0}
			_ = p
			cell := r.Cells["weipipe-interleave"]
			// Row labels are "P=<n>"; total = per-GPU × P.
			var pVal int
			if _, err := fmtSscanf(r.Label, "P=%d", &pVal); err != nil {
				t.Fatalf("bad label %q", r.Label)
			}
			total := cell.ThroughputTPS * float64(pVal)
			if i > 0 && total <= prevTotal {
				t.Errorf("%s: weipipe total throughput did not grow at %s (%.0f ≤ %.0f)",
					e.ID, r.Label, total, prevTotal)
			}
			prevTotal = total
		}
		lastRow := e.Rows[len(e.Rows)-1]
		if best, _ := lastRow.Best(); best != "weipipe-interleave" {
			t.Errorf("%s: best at largest P = %s", e.ID, best)
		}
	}
}

func TestTimelinesRender(t *testing.T) {
	for i, f := range []func(int) (string, error){Figure1, Figure2, Figure3, Figure4} {
		s, err := f(80)
		if err != nil {
			t.Fatalf("figure %d: %v", i+1, err)
		}
		if !strings.Contains(s, "w0") || !strings.Contains(s, "F") || !strings.Contains(s, "B") {
			t.Fatalf("figure %d timeline malformed:\n%s", i+1, s)
		}
		if len(strings.Split(strings.TrimSpace(s), "\n")) != 5 { // header + 4 workers
			t.Fatalf("figure %d: wrong line count:\n%s", i+1, s)
		}
	}
}

func TestNaiveBubbleExceedsInterleave(t *testing.T) {
	// The point of Figures 1 vs 2: Naive's bubble dwarfs Interleave's.
	n, err := Timeline("weipipe-naive", 4, 8, 80)
	if err != nil {
		t.Fatal(err)
	}
	i, err := Timeline("weipipe-interleave", 4, 8, 80)
	if err != nil {
		t.Fatal(err)
	}
	nb := extractBubble(t, n)
	ib := extractBubble(t, i)
	if nb <= ib {
		t.Errorf("naive bubble %.1f%% not above interleave %.1f%%", nb, ib)
	}
}

func extractBubble(t *testing.T, timeline string) float64 {
	t.Helper()
	var v float64
	idx := strings.Index(timeline, "bubble=")
	if idx < 0 {
		t.Fatalf("no bubble in %q", timeline)
	}
	if _, err := fmtSscanf(timeline[idx:], "bubble=%f%%", &v); err != nil {
		t.Fatalf("parse bubble: %v", err)
	}
	return v
}

func TestFormatIncludesPaperNumbers(t *testing.T) {
	e, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := e.Format()
	if !strings.Contains(out, "|15139") {
		t.Errorf("formatted table missing paper value:\n%s", out)
	}
	if !strings.Contains(out, "OOM") {
		t.Error("formatted table missing OOM markers")
	}
	if !strings.Contains(out, "memory") {
		t.Error("formatted table missing memory block")
	}
}

func TestAllExperimentsBuild(t *testing.T) {
	exps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 8 {
		t.Fatalf("got %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if len(e.Rows) == 0 || len(e.Strategies) == 0 {
			t.Errorf("experiment %s empty", e.ID)
		}
	}
}

func TestExtTPShape(t *testing.T) {
	e, err := ExtTP()
	if err != nil {
		t.Fatal(err)
	}
	// On all-NVLink TP is competitive; on Ethernet fabrics it collapses
	// while WeiPipe barely moves.
	nvl := e.Rows[0]
	eth := e.Rows[2]
	tpDrop := 1 - eth.Cells["tp"].ThroughputTPS/nvl.Cells["tp"].ThroughputTPS
	wpDrop := 1 - eth.Cells["weipipe-interleave"].ThroughputTPS/nvl.Cells["weipipe-interleave"].ThroughputTPS
	if tpDrop < 0.6 {
		t.Errorf("TP only dropped %.0f%% on ethernet; expected a collapse", tpDrop*100)
	}
	if wpDrop > tpDrop/1.5 {
		t.Errorf("weipipe dropped %.0f%% vs TP's %.0f%%; expected relative resilience", wpDrop*100, tpDrop*100)
	}
	if eth.Cells["weipipe-interleave"].ThroughputTPS <= eth.Cells["tp"].ThroughputTPS {
		t.Error("weipipe not above TP on ethernet")
	}
}

func TestExtBubbleShape(t *testing.T) {
	e, err := ExtBubble()
	if err != nil {
		t.Fatal(err)
	}
	// Bubbles shrink as N grows for every schedule; GPipe and Naive are
	// the worst at every N.
	for _, s := range e.Strategies {
		first := e.Rows[0].Cells[s].ThroughputTPS // bubble %
		last := e.Rows[len(e.Rows)-1].Cells[s].ThroughputTPS
		if last >= first {
			t.Errorf("%s: bubble did not shrink with N (%.1f%% -> %.1f%%)", s, first, last)
		}
	}
	for _, r := range e.Rows {
		if r.Cells["weipipe-naive"].ThroughputTPS <= r.Cells["weipipe-interleave"].ThroughputTPS {
			t.Errorf("%s: naive bubble not above interleave", r.Label)
		}
	}
}

func TestExtHybridShape(t *testing.T) {
	e, err := ExtHybrid()
	if err != nil {
		t.Fatal(err)
	}
	// At P=8 (one ring) hybrid degenerates to flat; beyond it, hybrid must
	// dominate the flat ring and degrade far more slowly.
	first := e.Rows[0]
	if first.Cells["weipipe-dp8"].ThroughputTPS != first.Cells["weipipe-interleave"].ThroughputTPS {
		t.Error("P=8: hybrid should equal the flat ring")
	}
	last := e.Rows[len(e.Rows)-1]
	if last.Cells["weipipe-dp8"].ThroughputTPS < 1.5*last.Cells["weipipe-interleave"].ThroughputTPS {
		t.Errorf("P=32: hybrid %f not well above flat %f",
			last.Cells["weipipe-dp8"].ThroughputTPS, last.Cells["weipipe-interleave"].ThroughputTPS)
	}
	hybridDecline := perGPUDecline(e, "weipipe-dp8")
	flatDecline := perGPUDecline(e, "weipipe-interleave")
	if hybridDecline >= flatDecline {
		t.Errorf("hybrid declines %.1f%% ≥ flat %.1f%%", hybridDecline*100, flatDecline*100)
	}
}
