package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"weipipe/internal/cluster"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
)

// The grouped-belt benchmark records the tentpole claim of the wzb2g
// strategy from two independent directions:
//
//   - Simulated: schedule.BuildTraffic's link-tier accounting of the flat
//     (wzb2) versus grouped (wzb2g) belt on hierarchical topologies at
//     16–64 ranks — how many bytes the compiled schedule pushes across
//     group-boundary links per iteration, plus the modelled throughput.
//   - Measured: a functional p=16 in-process cluster run of both
//     strategies with comm.Stats' per-link-tier meters armed
//     (Options.GroupSize), summing each rank's actually-transmitted
//     inter-group bytes, plus a bit-identity verdict over losses and
//     final weights.
//
// Both halves are deterministic (byte counts and modelled times, no wall
// clocks), so BENCH_grouped.json is committed and CI diffs a regenerated
// copy against it, and `-require-grouped-win` can gate on the reduction.

// GroupedSimCell is one simulated grid point.
type GroupedSimCell struct {
	Strategy      string  `json:"strategy"`
	Topology      string  `json:"topology"`
	Workers       int     `json:"workers"`
	GroupSize     int     `json:"group_size"`
	InterBytes    float64 `json:"inter_group_bytes"`
	InterSends    int     `json:"inter_group_sends"`
	IntraBytes    float64 `json:"intra_group_bytes"`
	IntraSends    int     `json:"intra_group_sends"`
	ThroughputTPS float64 `json:"throughput_tps"`
}

// GroupedMeasured is the functional half: both strategies trained on the
// in-process fabric with identical data, group size, and iteration count.
type GroupedMeasured struct {
	Workers   int `json:"workers"`
	GroupSize int `json:"group_size"`
	Iters     int `json:"iters"`

	FlatInterBytes    int64 `json:"flat_inter_group_bytes"`
	FlatInterMsgs     int64 `json:"flat_inter_group_msgs"`
	FlatIntraBytes    int64 `json:"flat_intra_group_bytes"`
	GroupedInterBytes int64 `json:"grouped_inter_group_bytes"`
	GroupedInterMsgs  int64 `json:"grouped_inter_group_msgs"`
	GroupedIntraBytes int64 `json:"grouped_intra_group_bytes"`

	// InterReductionPct is 100·(1 − grouped/flat) over inter-group bytes.
	InterReductionPct float64 `json:"inter_reduction_pct"`
	// BitIdentical reports whether wzb2g reproduced wzb2's losses and final
	// weights bit for bit.
	BitIdentical bool `json:"bit_identical"`
}

// GroupedReport is the serialised benchmark (BENCH_grouped.json).
type GroupedReport struct {
	Simulated []GroupedSimCell `json:"simulated"`
	Measured  GroupedMeasured  `json:"measured"`
}

// groupedSimGrid is the simulated strategy×topology×scale grid: the two
// hierarchical topology families of the paper's scaling studies.
var groupedSimGrid = []struct {
	Name  string
	Build func(p int) cluster.Topology
}{
	{"nvlink-ethernet", func(p int) cluster.Topology { return cluster.NVLinkEthernet(p, 4) }},
	{"pcie-ethernet", func(p int) cluster.Topology { return cluster.PCIeEthernet(p, 4) }},
}

var groupedSimScales = []int{16, 32, 64}

// groupedFunctionalConfig is the measured half's workload: 16 ranks in
// groups of 4 (the smallest scale where cross-group exchange, holder
// rings, and intra-group circulation all have several members), one belt
// round per iteration, a model small enough for 16 in-process ranks.
func groupedFunctionalConfig() (model.Config, pipeline.Options, int, int, int) {
	cfg := model.Config{Vocab: 32, Hidden: 64, Layers: 16, Heads: 4, MaxSeq: 4, Seed: 7}
	opts := pipeline.Options{Adam: optim.DefaultAdamW(0.001), GroupSize: 4}
	return cfg, opts, 16, 16, 2 // p, microbatches, iters
}

// RunGroupedBench produces the full report.
func RunGroupedBench() (*GroupedReport, error) {
	rep := &GroupedReport{}

	for _, p := range groupedSimScales {
		w := sweepWorkload(p)
		for _, topo := range groupedSimGrid {
			top := topo.Build(p)
			for _, s := range []string{"wzb2", "wzb2g"} {
				spec := schedule.Spec{W: w, GPU: cluster.A800(), Top: top, Overlap: true}
				tasks, tr, err := schedule.BuildTraffic(s, spec)
				if err != nil {
					return nil, fmt.Errorf("grouped sim %s/%s/p=%d: %w", s, topo.Name, p, err)
				}
				res, err := sim.Run(tasks)
				if err != nil {
					return nil, fmt.Errorf("grouped sim %s/%s/p=%d: %w", s, topo.Name, p, err)
				}
				rep.Simulated = append(rep.Simulated, GroupedSimCell{
					Strategy: s, Topology: top.Name, Workers: p, GroupSize: top.GroupSize(),
					InterBytes: tr.InterBytes, InterSends: tr.InterSends,
					IntraBytes: tr.IntraBytes, IntraSends: tr.IntraSends,
					ThroughputTPS: w.Tokens() / (res.Makespan * float64(p)),
				})
			}
		}
	}

	m, err := measureGroupedTraffic()
	if err != nil {
		return nil, err
	}
	rep.Measured = *m
	return rep, nil
}

// measureGroupedTraffic runs the functional A/B on the in-process fabric.
func measureGroupedTraffic() (*GroupedMeasured, error) {
	cfg, opts, p, n, iters := groupedFunctionalConfig()
	batches := func(i int) []data.Batch {
		return data.Microbatches(uint64(700+i), n, 1, cfg.Vocab, cfg.MaxSeq)
	}
	run := func(s pipeline.Strategy) (*pipeline.ClusterResult, error) {
		return pipeline.RunCluster(s, p, cfg, opts, iters, batches)
	}
	flat, err := run(pipeline.StrategyWZB2)
	if err != nil {
		return nil, fmt.Errorf("grouped bench flat run: %w", err)
	}
	grouped, err := run(pipeline.StrategyWZB2G)
	if err != nil {
		return nil, fmt.Errorf("grouped bench grouped run: %w", err)
	}

	m := &GroupedMeasured{Workers: p, GroupSize: opts.GroupSize, Iters: iters}
	m.FlatInterBytes, m.FlatInterMsgs = flat.TotalComm().InterGroupTraffic()
	m.FlatIntraBytes, _ = flat.TotalComm().IntraGroupTraffic()
	m.GroupedInterBytes, m.GroupedInterMsgs = grouped.TotalComm().InterGroupTraffic()
	m.GroupedIntraBytes, _ = grouped.TotalComm().IntraGroupTraffic()
	if m.FlatInterBytes > 0 {
		m.InterReductionPct = 100 * (1 - float64(m.GroupedInterBytes)/float64(m.FlatInterBytes))
	}
	m.BitIdentical = bitIdenticalRuns(flat, grouped)
	return m, nil
}

// bitIdenticalRuns compares losses and assembled final weights exactly.
func bitIdenticalRuns(a, b *pipeline.ClusterResult) bool {
	if len(a.Losses) != len(b.Losses) || len(a.Weights) != len(b.Weights) {
		return false
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			return false
		}
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	return true
}

// CheckGroupedWin validates the report's gating claims: the grouped belt
// must be bit-identical to the flat one and must move strictly fewer bytes
// across group boundaries, both as measured on the wire at p=16 and as
// simulated on nvlink-ethernet at every scale.
func CheckGroupedWin(rep *GroupedReport) error {
	if !rep.Measured.BitIdentical {
		return fmt.Errorf("grouped belt is not bit-identical to flat wzb2")
	}
	if rep.Measured.GroupedInterBytes >= rep.Measured.FlatInterBytes {
		return fmt.Errorf("measured inter-group bytes not reduced: grouped %d ≥ flat %d",
			rep.Measured.GroupedInterBytes, rep.Measured.FlatInterBytes)
	}
	sim := map[string]map[int]map[string]GroupedSimCell{}
	for _, c := range rep.Simulated {
		if sim[c.Topology] == nil {
			sim[c.Topology] = map[int]map[string]GroupedSimCell{}
		}
		if sim[c.Topology][c.Workers] == nil {
			sim[c.Topology][c.Workers] = map[string]GroupedSimCell{}
		}
		sim[c.Topology][c.Workers][c.Strategy] = c
	}
	checked := 0
	for topoName, byP := range sim {
		for p, byS := range byP {
			flat, okF := byS["wzb2"]
			grouped, okG := byS["wzb2g"]
			if !okF || !okG {
				continue
			}
			if grouped.InterBytes >= flat.InterBytes {
				return fmt.Errorf("simulated inter-group bytes not reduced on %s p=%d: grouped %.3g ≥ flat %.3g",
					topoName, p, grouped.InterBytes, flat.InterBytes)
			}
			checked++
		}
	}
	if checked == 0 {
		return fmt.Errorf("report has no comparable simulated wzb2/wzb2g cells")
	}
	return nil
}

// WriteGroupedBench runs the benchmark and writes the JSON report to path,
// echoing a human-readable summary.
func WriteGroupedBench(path string) error {
	rep, err := RunGroupedBench()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	for _, c := range rep.Simulated {
		fmt.Printf("  sim %-16s p=%-3d %-6s inter %10.0f B (%4d sends)  intra %11.0f B  %7.0f tok/s/gpu\n",
			c.Topology, c.Workers, c.Strategy, c.InterBytes, c.InterSends, c.IntraBytes, c.ThroughputTPS)
	}
	meas := rep.Measured
	fmt.Printf("  measured p=%d m=%d ×%d iters: inter %d B → %d B (−%.1f%%), bit-identical %v\n",
		meas.Workers, meas.GroupSize, meas.Iters,
		meas.FlatInterBytes, meas.GroupedInterBytes, meas.InterReductionPct, meas.BitIdentical)
	fmt.Printf("  written to %s\n", path)
	return nil
}

// ReadGroupedReport loads an existing BENCH_grouped.json.
func ReadGroupedReport(path string) (*GroupedReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &GroupedReport{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
