package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/cost"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
)

// The overlap benchmark is a *functional* A/B measurement, not a model
// prediction: it trains the same WZB2 workload twice on the in-process
// fabric — blocking belt engine versus the asynchronous double-buffered one
// — and records wall time per step, the compute threads' blocked time inside
// weight-belt transport receives (Stats.ComputeRecvWait), their exposed belt
// waits (Stats.BeltStall / WeightBeltStall, measured identically in both
// modes), the belt wire volume in both wire formats, and a bit-identity
// verdict. The staged-wait ratio doubles as the simulator calibration
// (cost.OverlapMeasurement).
//
// The workload is chosen so belt-buffer copies are a visible fraction of
// step time: a wide model (large H → multi-megabyte weight chunks) on very
// short sequences (small G·S → modest compute per stage).

// OverlapReport is the recorded measurement, serialised to
// BENCH_overlap.json by `make bench-overlap`.
type OverlapReport struct {
	Strategy     string `json:"strategy"`
	Workers      int    `json:"workers"`
	Microbatches int    `json:"microbatches"`
	Hidden       int    `json:"hidden"`
	Layers       int    `json:"layers"`
	SeqLen       int    `json:"seq_len"`
	TimedIters   int    `json:"timed_iters"`
	Reps         int    `json:"reps"`

	BlockingStepMs   float64 `json:"blocking_step_ms"`
	OverlappedStepMs float64 `json:"overlapped_step_ms"`
	SpeedupPct       float64 `json:"speedup_pct"`

	// Recv wait is the compute loop's time blocked inside a *transport*
	// receive for weight-belt payloads (Stats.ComputeRecvWait), measured by
	// the same probe in both modes: in blocking mode every weight hop is
	// such a receive; in overlapped mode the engine owns all weight-belt
	// transport receives, so the compute loop records none — the engine has
	// decoupled the compute loop from the wire. The compute loop's residual
	// wait for engine-staged payloads is reported separately below as
	// weight stall, and the total including gradient-belt receives as belt
	// stall. Gradient waits are producer serialization (the upstream rank
	// must finish accumulating first) and persist in any engine; on a
	// single-core host both stall figures also absorb co-scheduled compute
	// of the other ranks, so they overstate true transport exposure.
	BlockingRecvWaitMsPerStep   float64 `json:"blocking_recv_wait_ms_per_step"`
	OverlappedRecvWaitMsPerStep float64 `json:"overlapped_recv_wait_ms_per_step"`
	RecvWaitReductionPct        float64 `json:"recv_wait_reduction_pct"`

	BlockingWeightStallMsPerStep   float64 `json:"blocking_weight_stall_ms_per_step"`
	OverlappedWeightStallMsPerStep float64 `json:"overlapped_weight_stall_ms_per_step"`

	BlockingStallMsPerStep   float64 `json:"blocking_belt_stall_ms_per_step"`
	OverlappedStallMsPerStep float64 `json:"overlapped_belt_stall_ms_per_step"`
	StallReductionPct        float64 `json:"stall_reduction_pct"`
	SuggestedLinkScale       float64 `json:"suggested_link_scale"`

	BeltBytesPerStepF32  int64 `json:"belt_bytes_per_step_f32"`
	BeltBytesPerStepBF16 int64 `json:"belt_bytes_per_step_bf16"`
	MaxInFlightBytes     int64 `json:"max_inflight_bytes_overlapped"`

	BitIdentical bool `json:"bit_identical"`
}

// overlapWorkload is the benchmark configuration (see the package comment
// for why it is copy-heavy). hidden/microbatches default to 384/8 when 0.
// The ring is the minimal p=2: the step-time gain from gradient buffer
// donation is one model's worth of copies regardless of p (R·p copies of a
// model/p-sized chunk), while the engine's per-op scheduling overhead grows
// with the op count 2·R·p — so the smallest ring gives the best
// signal-to-noise for the A/B on a single-core host.
func overlapWorkload(hidden, microbatches int) (model.Config, pipeline.Options, int, int) {
	if hidden == 0 {
		hidden = 384
	}
	if microbatches == 0 {
		microbatches = 8
	}
	cfg := model.Config{Vocab: 32, Hidden: hidden, Layers: 4, Heads: 4, MaxSeq: 2, Seed: 11}
	opts := pipeline.Options{Adam: optim.DefaultAdamW(0.001)}
	return cfg, opts, 2, microbatches
}

// overlapBatches builds the deterministic per-iteration microbatches.
func overlapBatches(cfg model.Config, n int) func(int) []data.Batch {
	return func(i int) []data.Batch {
		return data.Microbatches(uint64(900+i), n, 1, cfg.Vocab, cfg.MaxSeq)
	}
}

// overlapSample is one mode's best-of-reps measurement.
type overlapSample struct {
	stepSec     float64 // fastest per-step wall time across reps
	recvWait    float64 // per-step compute-thread transport recv wait (best rep)
	weightWait  float64 // per-step weight-belt exposed wait (best rep)
	stallSec    float64 // per-step total belt stall (best rep)
	beltBytes   int64   // per-step belt bytes on the wire
	maxInflight int64
	weights     []float32
}

func (s *overlapSample) fold(perStep float64, res *pipeline.ClusterResult, iters int) {
	total := res.TotalComm()
	if s.stepSec == 0 || perStep < s.stepSec {
		s.stepSec = perStep
		s.recvWait = total.ComputeRecvWait().Seconds() / float64(iters)
		s.weightWait = total.WeightBeltStall().Seconds() / float64(iters)
		s.stallSec = total.BeltStall().Seconds() / float64(iters)
	}
	s.beltBytes = (total.SentBytes(comm.KindWeight) + total.SentBytes(comm.KindGrad)) / int64(iters)
	s.maxInflight = total.MaxInFlightBytes()
	s.weights = res.Weights
}

// measureOverlapAB interleaves blocking and overlapped reps in time — A, B,
// B, A, A, B, … alternating which mode runs first in each pair, so both
// slow drift in the host's available CPU and any within-pair position bias
// (heap and pool state left by the preceding run) hit both modes equally —
// and keeps the fastest rep of each (after one warmup run apiece to
// populate the payload pools).
func measureOverlapAB(cfg model.Config, opts pipeline.Options, p, n, iters, reps int) (
	blocking, overlapped overlapSample, err error) {

	batches := overlapBatches(cfg, n)
	ovOpts := opts
	ovOpts.Overlap = true
	for _, o := range []pipeline.Options{opts, ovOpts} {
		if _, err = pipeline.RunCluster(pipeline.StrategyWZB2, p, cfg, o, 1, batches); err != nil {
			return
		}
	}
	modes := []struct {
		o      pipeline.Options
		sample *overlapSample
	}{{opts, &blocking}, {ovOpts, &overlapped}}
	for r := 0; r < reps; r++ {
		first, second := r%2, 1-r%2
		for _, i := range []int{first, second} {
			m := modes[i]
			// No forced GC between reps: runtime.GC() purges the sync.Pool
			// payload classes, and re-faulting fresh multi-megabyte buffers
			// penalizes whichever mode holds more chunks in flight. Min
			// filtering absorbs the collector's own pauses instead.
			start := time.Now()
			res, runErr := pipeline.RunCluster(pipeline.StrategyWZB2, p, cfg, m.o, iters, batches)
			if runErr != nil {
				err = runErr
				return
			}
			m.sample.fold(time.Since(start).Seconds()/float64(iters), res, iters)
		}
	}
	return
}

// RunOverlapBench performs the full A/B measurement. hidden and
// microbatches override the default workload when nonzero.
func RunOverlapBench(iters, reps, hidden, microbatches int) (*OverlapReport, error) {
	cfg, opts, p, n := overlapWorkload(hidden, microbatches)
	rep := &OverlapReport{
		Strategy: string(pipeline.StrategyWZB2), Workers: p, Microbatches: n,
		Hidden: cfg.Hidden, Layers: cfg.Layers, SeqLen: cfg.MaxSeq,
		TimedIters: iters, Reps: reps,
	}

	blocking, overlapped, err := measureOverlapAB(cfg, opts, p, n, iters, reps)
	if err != nil {
		return nil, fmt.Errorf("overlap A/B: %w", err)
	}

	// bf16 wire format: one iteration is enough — byte accounting is exact.
	bfOpts := opts
	bfOpts.BF16Wire = true
	bfRes, err := pipeline.RunCluster(pipeline.StrategyWZB2, p, cfg, bfOpts, 1, overlapBatches(cfg, n))
	if err != nil {
		return nil, fmt.Errorf("bf16 run: %w", err)
	}
	bfTotal := bfRes.TotalComm()

	rep.BlockingStepMs = blocking.stepSec * 1e3
	rep.OverlappedStepMs = overlapped.stepSec * 1e3
	rep.SpeedupPct = (blocking.stepSec - overlapped.stepSec) / blocking.stepSec * 100
	rep.BlockingRecvWaitMsPerStep = blocking.recvWait * 1e3
	rep.OverlappedRecvWaitMsPerStep = overlapped.recvWait * 1e3
	if blocking.recvWait > 0 {
		rep.RecvWaitReductionPct = (blocking.recvWait - overlapped.recvWait) / blocking.recvWait * 100
	}
	rep.BlockingWeightStallMsPerStep = blocking.weightWait * 1e3
	rep.OverlappedWeightStallMsPerStep = overlapped.weightWait * 1e3
	rep.BlockingStallMsPerStep = blocking.stallSec * 1e3
	rep.OverlappedStallMsPerStep = overlapped.stallSec * 1e3
	// The simulator's link-scale calibration uses the residual *staged* wait
	// ratio, not the transport-receive wait: that keeps the calibration
	// conservative on hosts where the engine cannot hide latency behind
	// genuinely concurrent compute.
	m := cost.OverlapMeasurement{
		BlockingStepSec: blocking.stepSec, OverlappedStepSec: overlapped.stepSec,
		BlockingStallSec: blocking.weightWait, OverlappedStallSec: overlapped.weightWait,
	}
	rep.StallReductionPct = 0
	if blocking.stallSec > 0 {
		if r := (blocking.stallSec - overlapped.stallSec) / blocking.stallSec * 100; r > 0 {
			rep.StallReductionPct = r
		}
	}
	rep.SuggestedLinkScale = m.SuggestedLinkScale()
	rep.BeltBytesPerStepF32 = blocking.beltBytes
	rep.BeltBytesPerStepBF16 = bfTotal.SentBytes(comm.KindWeight) + bfTotal.SentBytes(comm.KindGrad)
	rep.MaxInFlightBytes = overlapped.maxInflight
	rep.BitIdentical = len(blocking.weights) == len(overlapped.weights)
	for i := range blocking.weights {
		if blocking.weights[i] != overlapped.weights[i] {
			rep.BitIdentical = false
			break
		}
	}
	return rep, nil
}

// WriteOverlapBench runs the measurement and writes the JSON report to
// path, echoing a human-readable summary to stdout.
func WriteOverlapBench(path string, iters, reps, hidden, microbatches int) error {
	rep, err := RunOverlapBench(iters, reps, hidden, microbatches)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("overlap bench (%s, P=%d, N=%d, H=%d):\n", rep.Strategy, rep.Workers, rep.Microbatches, rep.Hidden)
	fmt.Printf("  step time      %.2f ms blocking -> %.2f ms overlapped (%.1f%% faster)\n",
		rep.BlockingStepMs, rep.OverlappedStepMs, rep.SpeedupPct)
	fmt.Printf("  recv wait      %.2f ms -> %.2f ms per step (%.1f%% less compute-thread transport wait)\n",
		rep.BlockingRecvWaitMsPerStep, rep.OverlappedRecvWaitMsPerStep, rep.RecvWaitReductionPct)
	fmt.Printf("  weight stall   %.2f ms -> %.2f ms per step (incl. engine-staged wait)\n",
		rep.BlockingWeightStallMsPerStep, rep.OverlappedWeightStallMsPerStep)
	fmt.Printf("  belt stall     %.2f ms -> %.2f ms per step (%.1f%% less exposed wait)\n",
		rep.BlockingStallMsPerStep, rep.OverlappedStallMsPerStep, rep.StallReductionPct)
	fmt.Printf("  belt bytes     %d f32 -> %d bf16 per step; max in flight %d\n",
		rep.BeltBytesPerStepF32, rep.BeltBytesPerStepBF16, rep.MaxInFlightBytes)
	fmt.Printf("  bit identical  %v; suggested -link-scale %.3f\n", rep.BitIdentical, rep.SuggestedLinkScale)
	fmt.Printf("  written to     %s\n", path)
	return nil
}

// RequireBitIdentical reads an overlap-bench JSON report and returns an
// error unless its bit_identical verdict is true. CI runs this after
// `weipipe-bench -overlap` as the overlap-engine regression guard.
func RequireBitIdentical(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep OverlapReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if !rep.BitIdentical {
		return fmt.Errorf("bench: %s: overlapped run was NOT bit-identical to blocking mode", path)
	}
	return nil
}
