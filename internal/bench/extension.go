package bench

import (
	"fmt"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
)

// ExtTP is an extension experiment beyond the paper: it quantifies the
// related-work comparison the paper argues qualitatively — how do tensor
// and sequence parallelism compare to weight-passing as links get slower?
// Both pay activation-sized collectives per layer (TP four all-reduces, SP
// two gathers + two scatters), devastating off-NVLink, while WeiPipe's
// fixed-size weight belts barely notice.
func ExtTP() (*Experiment, error) {
	w := cost.Workload{H: 2048, S: 8192, G: 4, L: 32, N: 32, P: 8, Recompute: true}.WithDefaults()
	e := &Experiment{
		ID:          "ext-tp",
		Title:       "Extension: tensor parallelism vs weight passing across fabrics",
		Description: "H=2048 S=8192 G=4 L=32 P=8; TP pays 4 activation-sized all-reduces per layer per microbatch.",
		Strategies:  []string{"tp", "sp", "1f1b", "fsdp", "weipipe-interleave"},
	}
	tops := []struct {
		label string
		top   cluster.Topology
	}{
		{"NVLink (single server)", cluster.NVLinkSingle(8)},
		{"PCIe + Ethernet", cluster.PCIeEthernet(8, 4)},
		{"NVLink + Ethernet", cluster.NVLinkEthernet(8, 4)},
	}
	for _, tc := range tops {
		row := Row{Label: tc.label, Cells: make(map[string]Cell)}
		for _, s := range e.Strategies {
			cell, err := RunCell(s, w, tc.top)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", tc.label, s, err)
			}
			row.Cells[s] = cell
		}
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

// ExtBubble is an extension experiment: asymptotic bubble ratios of every
// pipeline schedule as the microbatch count grows, quantifying the paper's
// §4.2.4 bubble analysis.
func ExtBubble() (*Experiment, error) {
	e := &Experiment{
		ID:          "ext-bubble",
		Title:       "Extension: bubble ratio vs microbatch count (paper §4.2.4 analysis)",
		Description: "H=1024 S=4096 G=4 L=8 P=4, all-NVLink (communication-free regime); cells are bubble %.",
		Strategies:  []string{"gpipe", "1f1b", "zb1", "zb2", "weipipe-naive", "weipipe-interleave", "wzb1", "wzb2"},
	}
	top := cluster.NVLinkSingle(4)
	for _, n := range []int{4, 8, 16, 32} {
		row := Row{Label: fmt.Sprintf("N=%d", n), Cells: make(map[string]Cell)}
		for _, s := range e.Strategies {
			w := cost.Workload{H: 1024, S: 4096, G: 4, L: 8, N: n, P: 4, Recompute: s != "zb1" && s != "zb2"}.WithDefaults()
			cell, err := RunCell(s, w, top)
			if err != nil {
				return nil, err
			}
			// report bubble in the throughput slot for formatting
			cell.ThroughputTPS = cell.BubbleRatio * 100
			row.Cells[s] = cell
		}
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

// ExtHybrid quantifies the hybrid WeiPipe×DP composition (implemented
// functionally in pipeline.WeiPipeDP): at large worker counts a single flat
// WeiPipe ring leaves each worker only L/P layers per chunk, so the belts
// saturate the inter-server Ethernet hops; rings of 8 inside each server
// keep the belts on NVLink and pay only one owner-gradient all-reduce
// across replicas per iteration.
func ExtHybrid() (*Experiment, error) {
	const (
		h, s, g, l = 2048, 8192, 4, 32
		nTotal     = 64
		ringSize   = 8
	)
	e := &Experiment{
		ID:          "ext-hybrid",
		Title:       "Extension: flat WeiPipe ring vs hybrid rings-of-8 × data parallel",
		Description: "H=2048 S=8192 G=4 L=32, batch fixed 256 sequences, 8 GPUs/server, Ethernet between servers.",
		Strategies:  []string{"1f1b", "weipipe-interleave", "weipipe-dp8"},
	}
	for _, p := range []int{8, 16, 32} {
		worldTop := cluster.NVLinkEthernet(p, 8)
		row := Row{Label: fmt.Sprintf("P=%d", p), Cells: make(map[string]Cell)}
		flat := cost.Workload{H: h, S: s, G: g, L: l, N: nTotal, P: p, Recompute: true}.WithDefaults()
		for _, st := range []string{"1f1b", "weipipe-interleave"} {
			cell, err := RunCell(st, flat, worldTop)
			if err != nil {
				return nil, err
			}
			row.Cells[st] = cell
		}

		// hybrid: rings of 8 on NVLink, one cross-replica owner all-reduce.
		groups := p / ringSize
		ringW := cost.Workload{H: h, S: s, G: g, L: l, N: nTotal / groups, P: ringSize, Recompute: true}.WithDefaults()
		cell, err := RunCell("weipipe-interleave", ringW, cluster.NVLinkSingle(ringSize))
		if err != nil {
			return nil, err
		}
		if groups > 1 && !cell.OOM {
			ownChunkBytes := ringW.TotalParams() * 2 / float64(ringSize)
			cross := cluster.Topology{
				Name: "cross", P: groups,
				SendBW:  repeatF(cluster.EthernetBW, groups),
				Latency: repeatF(cluster.EthernetLatency, groups),
			}
			iter := ringW.Tokens()/(cell.ThroughputTPS*float64(ringSize)) + cross.RingAllReduceTime(ownChunkBytes)
			cell.ThroughputTPS = flat.Tokens() / (iter * float64(p))
		}
		row.Cells["weipipe-dp8"] = cell
		e.Rows = append(e.Rows, row)
	}
	return e, nil
}

func repeatF(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
