package bench

import (
	"fmt"
	"strings"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
)

// Timeline renders an ASCII schedule diagram for a strategy — the textual
// analogue of the paper's Figures 1–4 (the rotating-circle diagrams for
// WeiPipe-Naive, WeiPipe-Interleave, WZB1 and WZB2) and usable for any
// strategy. Each worker is one row; time runs left to right; F/B/W mark
// forward, activation-gradient and weight-gradient compute, '.' is idle.
func Timeline(strategy string, p, n int, width int) (string, error) {
	if width <= 0 {
		width = 96
	}
	// One layer per worker (L = P) matches the figures' granularity.
	w := cost.Workload{
		H: 1024, S: 4096, G: 4, L: p, N: n, P: p,
		Heads: 16, Recompute: false,
	}.WithDefaults()
	spec := schedule.Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkSingle(p), Overlap: true}
	tasks, err := schedule.Build(strategy, spec)
	if err != nil {
		return "", err
	}
	res, err := sim.Run(tasks)
	if err != nil {
		return "", err
	}
	return RenderTimeline(res, p, width,
		fmt.Sprintf("%s: P=%d workers, N=%d microbatches, bubble=%.1f%%",
			strategy, p, n, res.BubbleRatio()*100)), nil
}

// RenderTimeline draws per-worker occupancy of a simulated schedule.
func RenderTimeline(res *sim.Result, p, width int, header string) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("\n")
	scale := float64(width) / res.Makespan
	for worker := 0; worker < p; worker++ {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, t := range res.WorkerTimeline(worker) {
			lo := int(t.Start * scale)
			hi := int(t.End * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			ch := byte('?')
			switch t.Kind {
			case "F":
				ch = 'F'
			case "B":
				ch = 'B'
			case "W":
				ch = 'W'
			}
			for i := lo; i < hi && i < width; i++ {
				line[i] = ch
			}
		}
		fmt.Fprintf(&b, "w%-2d |%s|\n", worker, line)
	}
	return b.String()
}

// Figure1 through Figure4 render the paper's schedule diagrams.
func Figure1(width int) (string, error) { return Timeline("weipipe-naive", 4, 8, width) }

// Figure2 renders the WeiPipe-Interleave schedule (paper Figure 2).
func Figure2(width int) (string, error) { return Timeline("weipipe-interleave", 4, 8, width) }

// Figure3 renders the WZB1 schedule (paper Figure 3).
func Figure3(width int) (string, error) { return Timeline("wzb1", 4, 8, width) }

// Figure4 renders the WZB2 schedule (paper Figure 4).
func Figure4(width int) (string, error) { return Timeline("wzb2", 4, 8, width) }
