package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"weipipe/internal/cluster"
	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
)

// The P2P mode benchmark records the transport autotuning claim from two
// independent, fully deterministic directions:
//
//   - Simulated: the compiled schedule's envelope counts and modelled
//     throughput under each P2P link model (frame/batched/duplex/auto) on
//     a flat NVLink ring and the two hierarchical profiles. Under the
//     batched model each tick's forward-belt hop carries the envelope and
//     the same-tick backward/gradient frames ride it — strictly fewer
//     envelope sends for identical bytes, with per-frame dependencies
//     untouched, so modelled throughput never regresses.
//   - Measured: functional in-process runs of every mode against the
//     frame baseline with identical data — a bit-identity verdict plus
//     belt byte/message equality (modes package the wire differently,
//     never change what is sent).
//
// Both halves avoid wall clocks and TCP timing (burst counts over a real
// chaotic socket depend on writer scheduling), so BENCH_p2p.json is
// committed and CI diffs a regenerated copy; `-require-p2p-win` gates on
// the batched send reduction and on every mode's bit-identity.

// P2PSimCell is one simulated grid point.
type P2PSimCell struct {
	Strategy      string  `json:"strategy"`
	Topology      string  `json:"topology"`
	Workers       int     `json:"workers"`
	Mode          string  `json:"mode"`
	LinkSends     int     `json:"link_sends"`
	LinkBytes     float64 `json:"link_bytes"`
	ThroughputTPS float64 `json:"throughput_tps"`
}

// P2PModeMeasured is one mode's functional A/B against the frame baseline.
type P2PModeMeasured struct {
	Mode string `json:"mode"`
	// BeltBytes/BeltMsgs are the run's total transport sends — identical
	// across modes by construction (packaging happens below the meter).
	BeltBytes int64 `json:"belt_bytes"`
	BeltMsgs  int64 `json:"belt_msgs"`
	// BitIdentical reports whether the mode reproduced the frame
	// baseline's losses and final weights bit for bit.
	BitIdentical bool `json:"bit_identical"`
}

// P2PMeasured is the functional half across strategies and modes.
type P2PMeasured struct {
	Workers   int               `json:"workers"`
	GroupSize int               `json:"group_size"`
	Iters     int               `json:"iters"`
	WZB2      []P2PModeMeasured `json:"wzb2"`
	WZB2G     []P2PModeMeasured `json:"wzb2g"`
}

// P2PReport is the serialised benchmark (BENCH_p2p.json).
type P2PReport struct {
	Simulated []P2PSimCell `json:"simulated"`
	Measured  P2PMeasured  `json:"measured"`
}

// p2pModes is the full mode grid.
var p2pModes = []string{"frame", "batched", "duplex", "auto"}

// p2pSimGrid covers a flat fast ring (where duplex/auto should not
// regress) and the paper's two hierarchical profiles (where the
// high-latency boundary links are the batched mode's target).
var p2pSimGrid = []struct {
	Name  string
	Build func(p int) cluster.Topology
}{
	{"nvlink", func(p int) cluster.Topology { return cluster.NVLinkSingle(p) }},
	{"nvlink-ethernet", func(p int) cluster.Topology { return cluster.NVLinkEthernet(p, 4) }},
	{"pcie-ethernet", func(p int) cluster.Topology { return cluster.PCIeEthernet(p, 4) }},
}

// RunP2PBench produces the full report.
func RunP2PBench() (*P2PReport, error) {
	rep := &P2PReport{}

	const p = 16
	// Four belt rounds (N = 4p): batched-mode pairing only exists in the
	// steady state — with a single round every use is warmup or cooldown
	// and no two hops ever share a delivery tick.
	w := sweepWorkload(p)
	w.N = 4 * p
	for _, topo := range p2pSimGrid {
		top := topo.Build(p)
		strategies := []string{"wzb2"}
		if top.GroupSize() > 1 {
			strategies = append(strategies, "wzb2g")
		}
		for _, s := range strategies {
			for _, mode := range p2pModes {
				spec := schedule.Spec{W: w, GPU: cluster.A800(), Top: top, Overlap: true, P2PMode: mode}
				tasks, tr, err := schedule.BuildTraffic(s, spec)
				if err != nil {
					return nil, fmt.Errorf("p2p sim %s/%s/%s: %w", s, topo.Name, mode, err)
				}
				res, err := sim.Run(tasks)
				if err != nil {
					return nil, fmt.Errorf("p2p sim %s/%s/%s: %w", s, topo.Name, mode, err)
				}
				rep.Simulated = append(rep.Simulated, P2PSimCell{
					Strategy: s, Topology: top.Name, Workers: p, Mode: mode,
					LinkSends:     tr.InterSends + tr.IntraSends,
					LinkBytes:     tr.InterBytes + tr.IntraBytes,
					ThroughputTPS: w.Tokens() / (res.Makespan * float64(p)),
				})
			}
		}
	}

	m, err := measureP2PModes()
	if err != nil {
		return nil, err
	}
	rep.Measured = *m
	return rep, nil
}

// measureP2PModes runs the functional mode A/B on the in-process fabric:
// every mode must reproduce the frame baseline bit for bit and move the
// same belt bytes (packaging below the meter, payloads unchanged).
func measureP2PModes() (*P2PMeasured, error) {
	cfg := model.Config{Vocab: 32, Hidden: 32, Layers: 8, Heads: 2, MaxSeq: 4, Seed: 11}
	const p, n, iters = 4, 8, 2
	m := &P2PMeasured{Workers: p, GroupSize: 2, Iters: iters}
	batches := func(i int) []data.Batch {
		return data.Microbatches(uint64(900+i), n, 1, cfg.Vocab, cfg.MaxSeq)
	}
	for _, s := range []pipeline.Strategy{pipeline.StrategyWZB2, pipeline.StrategyWZB2G} {
		var baseline *pipeline.ClusterResult
		for _, mode := range p2pModes {
			pm, err := comm.ParseP2PMode(mode)
			if err != nil {
				return nil, err
			}
			opts := pipeline.Options{Adam: optim.DefaultAdamW(0.001), GroupSize: 2, P2PMode: pm}
			res, err := pipeline.RunCluster(s, p, cfg, opts, iters, batches)
			if err != nil {
				return nil, fmt.Errorf("p2p bench %s/%s: %w", s, mode, err)
			}
			cell := P2PModeMeasured{Mode: mode}
			total := res.TotalComm()
			cell.BeltBytes = total.SentBytes(comm.KindWeight) + total.SentBytes(comm.KindGrad)
			cell.BeltMsgs = total.SentMsgs(comm.KindWeight) + total.SentMsgs(comm.KindGrad)
			if baseline == nil {
				baseline = res
				cell.BitIdentical = true
			} else {
				cell.BitIdentical = bitIdenticalRuns(baseline, res)
			}
			switch s {
			case pipeline.StrategyWZB2:
				m.WZB2 = append(m.WZB2, cell)
			default:
				m.WZB2G = append(m.WZB2G, cell)
			}
		}
	}
	return m, nil
}

// CheckP2PWin validates the report's gating claims: every mode must be
// bit-identical to the frame baseline with identical belt traffic, and on
// each high-latency hierarchical profile the batched link model must emit
// strictly fewer link sends than frame without losing modelled throughput
// by more than 1%.
func CheckP2PWin(rep *P2PReport) error {
	for name, cells := range map[string][]P2PModeMeasured{"wzb2": rep.Measured.WZB2, "wzb2g": rep.Measured.WZB2G} {
		if len(cells) == 0 {
			return fmt.Errorf("report has no measured %s cells", name)
		}
		base := cells[0]
		for _, c := range cells {
			if !c.BitIdentical {
				return fmt.Errorf("%s mode %s is not bit-identical to the frame baseline", name, c.Mode)
			}
			if c.BeltBytes != base.BeltBytes || c.BeltMsgs != base.BeltMsgs {
				return fmt.Errorf("%s mode %s changed belt traffic: %d B/%d msgs vs frame's %d B/%d msgs",
					name, c.Mode, c.BeltBytes, c.BeltMsgs, base.BeltBytes, base.BeltMsgs)
			}
		}
	}
	byKey := map[string]map[string]P2PSimCell{}
	for _, c := range rep.Simulated {
		key := c.Topology + "/" + c.Strategy
		if byKey[key] == nil {
			byKey[key] = map[string]P2PSimCell{}
		}
		byKey[key][c.Mode] = c
	}
	checked := 0
	for key, byMode := range byKey {
		frame, okF := byMode["frame"]
		batched, okB := byMode["batched"]
		if !okF || !okB {
			return fmt.Errorf("simulated grid %s lacks a frame/batched pair", key)
		}
		if frame.Topology == "nvlink" {
			continue // flat fast ring: batching is not the win case
		}
		if batched.LinkSends >= frame.LinkSends {
			return fmt.Errorf("simulated %s: batched link sends not reduced: %d ≥ %d",
				key, batched.LinkSends, frame.LinkSends)
		}
		if batched.ThroughputTPS < 0.99*frame.ThroughputTPS {
			return fmt.Errorf("simulated %s: batched throughput regressed: %.0f < %.0f tok/s/gpu",
				key, batched.ThroughputTPS, frame.ThroughputTPS)
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("report has no comparable high-latency frame/batched pairs")
	}
	return nil
}

// WriteP2PBench runs the benchmark and writes the JSON report to path,
// echoing a human-readable summary.
func WriteP2PBench(path string) error {
	rep, err := RunP2PBench()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	for _, c := range rep.Simulated {
		fmt.Printf("  sim %-16s %-6s %-8s %6d link sends  %12.0f B  %7.0f tok/s/gpu\n",
			c.Topology, c.Strategy, c.Mode, c.LinkSends, c.LinkBytes, c.ThroughputTPS)
	}
	report := func(name string, cells []P2PModeMeasured) {
		for _, c := range cells {
			fmt.Printf("  measured %-6s %-8s belt %10d B / %5d msgs  bit-identical %v\n",
				name, c.Mode, c.BeltBytes, c.BeltMsgs, c.BitIdentical)
		}
	}
	report("wzb2", rep.Measured.WZB2)
	report("wzb2g", rep.Measured.WZB2G)
	fmt.Printf("  written to %s\n", path)
	return nil
}

// ReadP2PReport loads an existing BENCH_p2p.json.
func ReadP2PReport(path string) (*P2PReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &P2PReport{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
