package bench

import (
	"fmt"
	"strings"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
	"weipipe/internal/trace"
)

// CompareReport aligns a measured runtime trace against the simulator's
// predicted schedule for the same (strategy, p, n): per-phase totals side
// by side, plus a calibrated cost.Workload parameter suggestion that would
// make the model reproduce the measurement.
type CompareReport struct {
	Meta      trace.RunMeta
	Workload  cost.Workload
	Measured  cost.PhaseTotals
	Simulated cost.PhaseTotals
	// Bubble is the simulated schedule's idle fraction.
	Bubble      float64
	Calibration cost.Calibration
}

// workloadFromMeta rebuilds the cost workload a trace was captured under.
// Traces written by weipipe-train embed the full model shape; traces with
// only (strategy, p, n) fall back to the Timeline figure convention so the
// comparison still lines up schedule-shape against schedule-shape.
func workloadFromMeta(meta *trace.RunMeta) cost.Workload {
	w := cost.Workload{
		H: meta.Hidden, S: meta.Seq, G: meta.Batch, L: meta.Layers,
		N: meta.N, P: meta.P, Heads: meta.Heads, Vocab: meta.Vocab,
	}
	if w.H <= 0 || w.S <= 0 || w.G <= 0 || w.L <= 0 {
		w = cost.Workload{H: 1024, S: 4096, G: 4, L: meta.P, N: meta.N, P: meta.P, Heads: 16}
	}
	return w.WithDefaults()
}

// MeasuredTotals reduces a measured Chrome trace to per-phase totals: mean
// per-iteration step time (max across ranks, since the iteration completes
// with its slowest rank) and mean per rank-iteration F/B/W/opt/stall sums.
func MeasuredTotals(events []trace.ChromeEvent) cost.PhaseTotals {
	var t cost.PhaseTotals
	ranks := map[int]bool{}
	stepByIter := map[string]float64{}
	var fUS, bUS, wUS, oUS, stallUS float64
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		ranks[e.Pid] = true
		switch e.Name {
		case "step":
			iter := e.Args["iter"]
			if e.Dur > stepByIter[iter] {
				stepByIter[iter] = e.Dur
			}
		case "F":
			fUS += e.Dur
		case "B":
			bUS += e.Dur
		case "W":
			wUS += e.Dur
		case "opt":
			oUS += e.Dur
		case "stall":
			stallUS += e.Dur
		}
	}
	t.Ranks = len(ranks)
	t.Iters = len(stepByIter)
	if t.Iters > 0 {
		var sum float64
		for _, d := range stepByIter {
			sum += d
		}
		t.StepSec = sum / float64(t.Iters) / 1e6
	}
	if denom := float64(t.Ranks * t.Iters); denom > 0 {
		t.FSec = fUS / denom / 1e6
		t.BSec = bUS / denom / 1e6
		t.WSec = wUS / denom / 1e6
		t.OptSec = oUS / denom / 1e6
		t.ExposedSec = stallUS / denom / 1e6
	}
	return t
}

// simulatedTotals reduces a one-iteration simulated schedule to the same
// per-phase shape: makespan as the step, per-worker mean F/B/W sums, and
// the mean idle (bubble) time as the exposed communication.
func simulatedTotals(res *sim.Result, p int) cost.PhaseTotals {
	t := cost.PhaseTotals{StepSec: res.Makespan, Iters: 1, Ranks: p}
	for _, task := range res.Tasks {
		switch task.Kind {
		case "F":
			t.FSec += task.End - task.Start
		case "B":
			t.BSec += task.End - task.Start
		case "W":
			t.WSec += task.End - task.Start
		}
	}
	if p > 0 {
		t.FSec /= float64(p)
		t.BSec /= float64(p)
		t.WSec /= float64(p)
	}
	t.ExposedSec = res.Makespan * res.BubbleRatio()
	return t
}

// CompareTrace parses a measured Chrome trace (as written by
// `weipipe-train -trace`), rebuilds the simulator's predicted schedule for
// the same (strategy, p, n) on the reference A800 ring, and reports the
// per-phase deltas plus a calibrated workload suggestion.
func CompareTrace(blob []byte) (*CompareReport, error) {
	events, meta, err := trace.ParseChrome(blob)
	if err != nil {
		return nil, fmt.Errorf("bench: parse trace: %w", err)
	}
	if meta == nil {
		return nil, fmt.Errorf("bench: trace has no embedded run metadata (need a trace written by weipipe-train -trace)")
	}
	if meta.P <= 0 || meta.N <= 0 || meta.Strategy == "" {
		return nil, fmt.Errorf("bench: trace metadata incomplete: %+v", *meta)
	}

	w := workloadFromMeta(meta)
	spec := schedule.Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkSingle(meta.P), Overlap: meta.Overlap, P2PMode: meta.P2PMode}
	tasks, err := schedule.Build(meta.Strategy, spec)
	if err != nil {
		return nil, fmt.Errorf("bench: build predicted schedule: %w", err)
	}
	res, err := sim.Run(tasks)
	if err != nil {
		return nil, fmt.Errorf("bench: simulate predicted schedule: %w", err)
	}

	r := &CompareReport{
		Meta:      *meta,
		Workload:  w,
		Measured:  MeasuredTotals(events),
		Simulated: simulatedTotals(res, meta.P),
		Bubble:    res.BubbleRatio(),
	}
	if r.Measured.Ranks == 0 || r.Measured.Iters == 0 {
		return nil, fmt.Errorf("bench: trace carries no step spans to compare")
	}
	r.Calibration = cost.Calibrate(w, spec.GPU, r.Measured, r.Simulated.ExposedSec)
	return r, nil
}

// deltaPct renders measured-vs-simulated as a signed percentage of the
// simulated value, or "n/a" when the prediction is zero.
func deltaPct(measured, simulated float64) string {
	if simulated == 0 {
		return "     n/a"
	}
	return fmt.Sprintf("%+7.1f%%", (measured-simulated)/simulated*100)
}

// String renders the comparison as the aligned per-phase table
// `weipipe-trace -compare` prints.
func (r *CompareReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compare: %s p=%d n=%d (measured %d iters × %d ranks vs simulated schedule)\n",
		r.Meta.Strategy, r.Meta.P, r.Meta.N, r.Measured.Iters, r.Measured.Ranks)
	fmt.Fprintf(&b, "%-10s %14s %14s %9s\n", "phase", "measured", "simulated", "delta")
	row := func(name string, m, s float64) {
		fmt.Fprintf(&b, "%-10s %13.6fs %13.6fs %s\n", name, m, s, deltaPct(m, s))
	}
	row("step", r.Measured.StepSec, r.Simulated.StepSec)
	row("F", r.Measured.FSec, r.Simulated.FSec)
	row("B", r.Measured.BSec, r.Simulated.BSec)
	row("W", r.Measured.WSec, r.Simulated.WSec)
	row("exposed", r.Measured.ExposedSec, r.Simulated.ExposedSec)
	fmt.Fprintf(&b, "simulated bubble: %.1f%%\n", r.Bubble*100)
	fmt.Fprintf(&b, "calibration: effective %.3g FLOP/s → suggest MFU=%.3g LinkScale=%.2f\n",
		r.Calibration.EffectiveFLOPS, r.Calibration.SuggestedMFU, r.Calibration.SuggestedLinkScale)
	return b.String()
}
