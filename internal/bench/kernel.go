package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"weipipe/internal/tensor"
)

// The kernel A/B is the functional counterpart of the Go benchmark
// BenchmarkMatMulNT/256x256x256: it times the headline NT matmul on the
// scalar oracle and on the best registered SIMD backend and records the
// speedup, so CI can guard the kernel work without go-test bench
// plumbing. On machines with no SIMD backend the A/B degenerates to
// scalar-vs-scalar and reports a speedup of 1.

// KernelReport is the serialised measurement, written by
// `weipipe-bench -kernel`.
type KernelReport struct {
	GoArch        string   `json:"goarch"`
	Backends      []string `json:"backends"`
	BestBackend   string   `json:"best_backend"`
	M             int      `json:"m"`
	N             int      `json:"n"`
	K             int      `json:"k"`
	Reps          int      `json:"reps"`
	ScalarMs      float64  `json:"scalar_ms"`
	BestMs        float64  `json:"best_ms"`
	Speedup       float64  `json:"speedup"`
	MaxAbsDiff    float64  `json:"max_abs_diff"`
	ToleranceMode bool     `json:"tolerance_mode"`
}

// timeNT returns the fastest of reps wall-clock timings of one
// MatMulTB(dst, a, b) on the current backend.
func timeNT(dst, a, b *tensor.Tensor, reps int) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		tensor.MatMulTB(dst, a, b)
		if sec := time.Since(start).Seconds(); best == 0 || sec < best {
			best = sec
		}
	}
	return best
}

// RunKernelBench measures the scalar-vs-best-backend NT A/B at the
// benchmark shape 256×256×256.
func RunKernelBench(reps int) (*KernelReport, error) {
	const dim = 256
	if reps <= 0 {
		reps = 20
	}
	rng := tensor.NewRNG(1)
	a := tensor.New(dim, dim)
	bt := tensor.New(dim, dim)
	tensor.FillUniform(a, rng, -1, 1)
	tensor.FillUniform(bt, rng, -1, 1)
	scalarDst := tensor.New(dim, dim)
	bestDst := tensor.New(dim, dim)

	rep := &KernelReport{
		GoArch: runtime.GOARCH, Backends: tensor.Backends(),
		M: dim, N: dim, K: dim, Reps: reps,
	}
	prev := tensor.BackendName()
	defer func() { _ = tensor.SetBackend(prev) }()

	if err := tensor.SetBackend("scalar"); err != nil {
		return nil, err
	}
	timeNT(scalarDst, a, bt, 1) // warm the worker pool
	rep.ScalarMs = timeNT(scalarDst, a, bt, reps) * 1e3

	if err := tensor.SetBackend("auto"); err != nil {
		return nil, err
	}
	rep.BestBackend = tensor.BackendName()
	rep.ToleranceMode = !tensor.BackendExact()
	timeNT(bestDst, a, bt, 1)
	rep.BestMs = timeNT(bestDst, a, bt, reps) * 1e3
	if rep.BestMs > 0 {
		rep.Speedup = rep.ScalarMs / rep.BestMs
	}
	for i := range scalarDst.Data {
		d := float64(scalarDst.Data[i]) - float64(bestDst.Data[i])
		if d < 0 {
			d = -d
		}
		if d > rep.MaxAbsDiff {
			rep.MaxAbsDiff = d
		}
	}
	return rep, nil
}

// WriteKernelBench runs the A/B and writes the JSON report.
func WriteKernelBench(path string, reps int) error {
	rep, err := RunKernelBench(reps)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("kernel A/B (MatMulNT %dx%dx%d, best of %d):\n", rep.M, rep.K, rep.N, rep.Reps)
	fmt.Printf("  scalar   %.3f ms\n", rep.ScalarMs)
	fmt.Printf("  %-8s %.3f ms (%.2fx, max |diff| %.2e, tolerance mode %v)\n",
		rep.BestBackend, rep.BestMs, rep.Speedup, rep.MaxAbsDiff, rep.ToleranceMode)
	fmt.Printf("  written to %s\n", path)
	return nil
}

// RequireKernelSpeedup reads a kernel A/B report and fails unless the
// best backend reached the given speedup over scalar. A report whose best
// backend IS scalar (no SIMD on the host) passes vacuously — the guard
// targets regressions in the SIMD kernels, not missing hardware.
func RequireKernelSpeedup(path string, min float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep KernelReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if rep.BestBackend == "scalar" {
		fmt.Printf("kernel guard: no SIMD backend on this host, skipping speedup check\n")
		return nil
	}
	if rep.Speedup < min {
		return fmt.Errorf("bench: %s: %s speedup %.2fx below required %.2fx",
			path, rep.BestBackend, rep.Speedup, min)
	}
	return nil
}
