// Package bench regenerates every table and figure of the paper's
// evaluation section from the cost model, the per-strategy schedules and
// the discrete-event simulator. Each experiment returns the same
// rows/series the paper reports (throughput in tokens/s/GPU, memory in GB,
// OOM markers, scaling curves) together with the paper's published numbers
// for side-by-side comparison in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
)

// Cell is one (configuration, strategy) measurement.
type Cell struct {
	// ThroughputTPS is tokens/second/GPU (0 when OOM).
	ThroughputTPS float64
	// MemoryGB is the modelled peak per-worker memory.
	MemoryGB float64
	// OOM marks configurations that exceed the device budget.
	OOM bool
	// BubbleRatio is the simulated compute-idle fraction.
	BubbleRatio float64
	// PaperTPS is the paper's measured tokens/s/GPU (0 if unreported), and
	// PaperOOM its reported OOM marker.
	PaperTPS float64
	PaperOOM bool
	// PaperMemGB is the paper's measured memory (0 if unreported).
	PaperMemGB float64
}

// Row is one configuration row of a table (or one x-point of a figure).
type Row struct {
	Label string
	Cells map[string]Cell // keyed by strategy name
}

// Experiment is a regenerated table or figure.
type Experiment struct {
	ID          string // "table2", "fig6", ...
	Title       string
	Description string
	Strategies  []string // column order
	Rows        []Row
	// ShowMemory adds the memory column block when formatting.
	ShowMemory bool
}

// RunCell simulates one (workload, topology, strategy) cell.
func RunCell(strategy string, w cost.Workload, top cluster.Topology) (Cell, error) {
	gpu := cluster.A800()
	cell := Cell{MemoryGB: w.MemoryBytes(strategy) / (1 << 30)}
	if !w.FitsMemory(strategy, gpu) {
		cell.OOM = true
		return cell, nil
	}
	tasks, err := schedule.Build(strategy, schedule.Spec{W: w, GPU: gpu, Top: top, Overlap: true})
	if err != nil {
		return cell, err
	}
	res, err := sim.Run(tasks)
	if err != nil {
		return cell, err
	}
	cell.ThroughputTPS = w.Tokens() / (res.Makespan * float64(w.P))
	cell.BubbleRatio = res.BubbleRatio()
	return cell, nil
}

// Best returns the strategy with the highest throughput in the row
// (ignoring OOM cells) and that throughput.
func (r Row) Best() (string, float64) {
	best, bestTPS := "", 0.0
	for s, c := range r.Cells {
		if !c.OOM && c.ThroughputTPS > bestTPS {
			best, bestTPS = s, c.ThroughputTPS
		}
	}
	return best, bestTPS
}

// BestExcluding returns the best strategy in the row other than `skip`.
func (r Row) BestExcluding(skip string) (string, float64) {
	best, bestTPS := "", 0.0
	for s, c := range r.Cells {
		if s == skip || c.OOM {
			continue
		}
		if c.ThroughputTPS > bestTPS {
			best, bestTPS = s, c.ThroughputTPS
		}
	}
	return best, bestTPS
}

// Format renders the experiment as an aligned text table with model and
// paper values side by side.
func (e *Experiment) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if e.Description != "" {
		fmt.Fprintf(&b, "%s\n", e.Description)
	}
	b.WriteString(formatBlock(e, "throughput (tokens/s/GPU), model | paper", func(c Cell) string {
		if c.OOM {
			return "OOM"
		}
		if c.PaperTPS > 0 {
			return fmt.Sprintf("%.0f|%.0f", c.ThroughputTPS, c.PaperTPS)
		}
		if c.PaperOOM {
			return fmt.Sprintf("%.0f|OOM", c.ThroughputTPS)
		}
		return fmt.Sprintf("%.0f", c.ThroughputTPS)
	}))
	if e.ShowMemory {
		b.WriteString(formatBlock(e, "memory (GB), model | paper", func(c Cell) string {
			if c.OOM {
				return fmt.Sprintf("OOM(%.0f)", c.MemoryGB)
			}
			if c.PaperMemGB > 0 {
				return fmt.Sprintf("%.1f|%.1f", c.MemoryGB, c.PaperMemGB)
			}
			return fmt.Sprintf("%.1f", c.MemoryGB)
		}))
	}
	return b.String()
}

func formatBlock(e *Experiment, caption string, cell func(Cell) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s --\n", caption)
	widths := make([]int, len(e.Strategies)+1)
	widths[0] = len("config")
	rows := make([][]string, 0, len(e.Rows)+1)
	header := append([]string{"config"}, e.Strategies...)
	for i, h := range header {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	rows = append(rows, header)
	for _, r := range e.Rows {
		line := []string{r.Label}
		for _, s := range e.Strategies {
			line = append(line, cell(r.Cells[s]))
		}
		for i, v := range line {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
		rows = append(rows, line)
	}
	for _, line := range rows {
		for i, v := range line {
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SortedStrategies returns the cell keys of a row in deterministic order.
func SortedStrategies(r Row) []string {
	out := make([]string, 0, len(r.Cells))
	for s := range r.Cells {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// fmtSscanf is a test seam over fmt.Sscanf.
var fmtSscanf = fmt.Sscanf
