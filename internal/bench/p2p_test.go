package bench

import (
	"path/filepath"
	"testing"
)

// TestP2PModeBenchWinsAndRoundTrips: the full P2P benchmark must satisfy
// its own CI gate — every measured mode bit-identical to the frame
// baseline with unchanged belt traffic, batched link sends reduced on the
// hierarchical profiles without modelled-throughput loss — and survive a
// serialization round trip unchanged in the eyes of the gate.
func TestP2PModeBenchWinsAndRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_p2p.json")
	if err := WriteP2PBench(path); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadP2PReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckP2PWin(rep); err != nil {
		t.Fatalf("regenerated report fails its own gate: %v", err)
	}
	if len(rep.Simulated) == 0 || len(rep.Measured.WZB2) != len(p2pModes) || len(rep.Measured.WZB2G) != len(p2pModes) {
		t.Fatalf("report incomplete: %d sim cells, %d/%d measured cells",
			len(rep.Simulated), len(rep.Measured.WZB2), len(rep.Measured.WZB2G))
	}
}

// TestP2PModeCheckRejectsRegressions: the gate must catch each failure
// class — a mode that diverged, a mode that changed belt traffic, and a
// batched link model that stopped cutting sends or lost throughput.
func TestP2PModeCheckRejectsRegressions(t *testing.T) {
	good := func() *P2PReport {
		return &P2PReport{
			Simulated: []P2PSimCell{
				{Strategy: "wzb2", Topology: "nvlink-ethernet", Mode: "frame", LinkSends: 100, ThroughputTPS: 50},
				{Strategy: "wzb2", Topology: "nvlink-ethernet", Mode: "batched", LinkSends: 40, ThroughputTPS: 50},
			},
			Measured: P2PMeasured{
				WZB2:  []P2PModeMeasured{{Mode: "frame", BeltBytes: 9, BeltMsgs: 3, BitIdentical: true}, {Mode: "batched", BeltBytes: 9, BeltMsgs: 3, BitIdentical: true}},
				WZB2G: []P2PModeMeasured{{Mode: "frame", BeltBytes: 9, BeltMsgs: 3, BitIdentical: true}, {Mode: "batched", BeltBytes: 9, BeltMsgs: 3, BitIdentical: true}},
			},
		}
	}
	if err := CheckP2PWin(good()); err != nil {
		t.Fatalf("gate rejects a winning report: %v", err)
	}
	breakers := []struct {
		name string
		mod  func(*P2PReport)
	}{
		{"diverged mode", func(r *P2PReport) { r.Measured.WZB2[1].BitIdentical = false }},
		{"changed belt traffic", func(r *P2PReport) { r.Measured.WZB2G[1].BeltMsgs++ }},
		{"no send reduction", func(r *P2PReport) { r.Simulated[1].LinkSends = 100 }},
		{"throughput regression", func(r *P2PReport) { r.Simulated[1].ThroughputTPS = 40 }},
		{"missing batched cell", func(r *P2PReport) { r.Simulated = r.Simulated[:1] }},
	}
	for _, b := range breakers {
		rep := good()
		b.mod(rep)
		if err := CheckP2PWin(rep); err == nil {
			t.Errorf("gate missed regression %q", b.name)
		}
	}
}
