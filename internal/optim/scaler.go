package optim

import "math"

// LossScaler implements dynamic loss scaling, the standard guard of fp16
// mixed-precision training (the paper's recipe keeps weights, activations
// and weight-gradients in fp16): the loss is multiplied by a scale before
// backward so small gradients survive fp16's underflow floor, gradients are
// unscaled before the optimizer step, and the scale adapts — halve on
// overflow (skip the step), double after a streak of clean steps.
type LossScaler struct {
	scale       float64
	growthSteps int // consecutive good steps before growing
	goodSteps   int
	minScale    float64
	maxScale    float64
	// Skipped counts steps dropped due to non-finite gradients.
	Skipped int
}

// NewLossScaler returns a scaler starting at initScale (e.g. 2^14),
// growing after growthSteps consecutive finite-gradient steps.
func NewLossScaler(initScale float64, growthSteps int) *LossScaler {
	if initScale <= 0 {
		initScale = 1 << 14
	}
	if growthSteps <= 0 {
		growthSteps = 2000
	}
	return &LossScaler{
		scale:       initScale,
		growthSteps: growthSteps,
		minScale:    1,
		maxScale:    1 << 24,
	}
}

// Scale returns the current loss multiplier.
func (s *LossScaler) Scale() float64 { return s.scale }

// Clone returns an independent scaler with the same state. Distributed
// trainers clone the configured scaler per rank: since every rank reaches
// the same global skip verdict each iteration, the clones evolve in
// lock-step without sharing mutable state across rank goroutines.
func (s *LossScaler) Clone() *LossScaler {
	c := *s
	return &c
}

// ScaleGrads multiplies a gradient vector by the current scale (apply to
// the loss gradient at the top of backward; scaling the loss scales every
// downstream gradient linearly).
func (s *LossScaler) ScaleGrads(g []float32) {
	f := float32(s.scale)
	for i := range g {
		g[i] *= f
	}
}

// Unscale divides gradients by the current scale and reports whether they
// are all finite. On a non-finite gradient it returns false WITHOUT
// modifying g further; the caller must skip the optimizer step and the
// scaler has already reduced its scale.
func (s *LossScaler) Unscale(g []float32) bool {
	inv := float32(1.0 / s.scale)
	for _, v := range g {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			s.onOverflow()
			return false
		}
	}
	for i := range g {
		g[i] *= inv
	}
	s.onGoodStep()
	return true
}

// Observe advances the scaler's schedule from an externally made step
// decision: the distributed runners detect non-finite gradients through a
// global scalar all-reduce (so every rank reaches the identical verdict)
// and then report it here — finite=false halves the scale and counts a
// skipped step, finite=true counts toward the growth streak. Serial code
// that holds the whole gradient can keep using Unscale instead.
func (s *LossScaler) Observe(finite bool) {
	if finite {
		s.onGoodStep()
	} else {
		s.onOverflow()
	}
}

func (s *LossScaler) onOverflow() {
	s.Skipped++
	s.goodSteps = 0
	s.scale /= 2
	if s.scale < s.minScale {
		s.scale = s.minScale
	}
}

func (s *LossScaler) onGoodStep() {
	s.goodSteps++
	if s.goodSteps >= s.growthSteps {
		s.goodSteps = 0
		s.scale *= 2
		if s.scale > s.maxScale {
			s.scale = s.maxScale
		}
	}
}

// Schedule maps a step index to a learning rate.
type Schedule interface {
	// LR returns the learning rate for 0-indexed optimizer step `step`.
	LR(step int) float64
}

// ConstantLR is a fixed learning rate.
type ConstantLR float64

// LR implements Schedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

// WarmupCosine is the LLM-standard schedule: linear warm-up from 0 to Base
// over Warmup steps, then cosine decay to Floor at Total steps (and Floor
// afterwards).
type WarmupCosine struct {
	Base   float64
	Floor  float64
	Warmup int
	Total  int
}

// LR implements Schedule.
func (w WarmupCosine) LR(step int) float64 {
	if w.Warmup > 0 && step < w.Warmup {
		return w.Base * float64(step+1) / float64(w.Warmup)
	}
	if step >= w.Total {
		return w.Floor
	}
	progress := float64(step-w.Warmup) / float64(w.Total-w.Warmup)
	return w.Floor + 0.5*(w.Base-w.Floor)*(1+math.Cos(math.Pi*progress))
}

// SetLR changes the optimizer's learning rate (for schedules).
func (o *AdamW) SetLR(lr float64) { o.cfg.LR = lr }

// LR returns the optimizer's current learning rate.
func (o *AdamW) LR() float64 { return o.cfg.LR }
