package optim

import (
	"math"
	"testing"
)

func TestSpikeDetectorFlagsOutlier(t *testing.T) {
	d := NewSpikeDetector(8, 6, false)
	// Steady gradient norms around 1.0 (sumSq ~ 1.0).
	for i := 0; i < 8; i++ {
		spike, skip := d.Observe(1.0 + 0.01*float64(i%3))
		if spike || skip {
			t.Fatalf("steady step %d flagged", i)
		}
	}
	spike, skip := d.Observe(400.0) // 20× the typical norm
	if !spike {
		t.Fatal("20x norm excursion not flagged")
	}
	if skip {
		t.Fatal("skip=false detector requested a skip")
	}
	if d.Spikes() != 1 {
		t.Fatalf("Spikes() = %d, want 1", d.Spikes())
	}
}

func TestSpikeDetectorSkipMode(t *testing.T) {
	d := NewSpikeDetector(8, 6, true)
	for i := 0; i < 8; i++ {
		d.Observe(1.0)
	}
	spike, skip := d.Observe(1e6)
	if !spike || !skip {
		t.Fatalf("skip-mode spike: spike=%v skip=%v, want true,true", spike, skip)
	}
}

// TestSpikeDetectorWindowNotContaminated: a flagged norm must not enter the
// window, so a sustained corruption keeps being flagged instead of
// normalising itself after window-many steps.
func TestSpikeDetectorWindowNotContaminated(t *testing.T) {
	d := NewSpikeDetector(6, 6, false)
	for i := 0; i < 6; i++ {
		d.Observe(1.0)
	}
	for i := 0; i < 20; i++ {
		if spike, _ := d.Observe(500.0); !spike {
			t.Fatalf("sustained excursion step %d absorbed into the window", i)
		}
	}
	if d.Spikes() != 20 {
		t.Fatalf("Spikes() = %d, want 20", d.Spikes())
	}
}

// TestSpikeDetectorTracksDrift: a slow legitimate trend (warm-up decay)
// must not trip the detector — the windowed median follows it.
func TestSpikeDetectorTracksDrift(t *testing.T) {
	d := NewSpikeDetector(8, 6, false)
	norm := 10.0
	for i := 0; i < 200; i++ {
		if spike, _ := d.Observe(norm * norm); spike {
			t.Fatalf("smooth decay flagged at step %d (norm %g)", i, norm)
		}
		norm *= 0.98
	}
}

func TestSpikeDetectorNonFinitePassThrough(t *testing.T) {
	d := NewSpikeDetector(4, 6, true)
	for i := 0; i < 4; i++ {
		d.Observe(1.0)
	}
	// NaN is the existing non-finite guard's jurisdiction: not a spike, no
	// skip request, not admitted to the window.
	if spike, skip := d.Observe(math.NaN()); spike || skip {
		t.Fatal("NaN claimed by spike detector")
	}
	// Inf, by contrast, is a magnitude anomaly (the float32 scalar
	// all-reduce overflows on huge finite gradients): flagged and skipped.
	if spike, skip := d.Observe(math.Inf(1)); !spike || !skip {
		t.Fatal("overflowed sum not flagged")
	}
	if d.Spikes() != 1 {
		t.Fatalf("Spikes() = %d, want 1", d.Spikes())
	}
	if spike, _ := d.Observe(1.0); spike {
		t.Fatal("window contaminated by non-finite values")
	}
}

func TestSpikeDetectorWarmup(t *testing.T) {
	d := NewSpikeDetector(8, 6, false)
	// With fewer than 3 admitted norms there is no robust scale estimate;
	// nothing may be flagged.
	if spike, _ := d.Observe(1e9); spike {
		t.Fatal("first observation flagged")
	}
	if spike, _ := d.Observe(1e-9); spike {
		t.Fatal("second observation flagged")
	}
}

func TestSpikeDetectorExportRestoreRoundTrip(t *testing.T) {
	d := NewSpikeDetector(6, 6, true)
	for i := 0; i < 10; i++ {
		d.Observe(1.0 + float64(i)*0.05)
	}
	d.Observe(900.0) // one spike
	st := d.ExportState(false)

	fresh := NewSpikeDetector(6, 6, true)
	fresh.RestoreState(st)
	if fresh.Spikes() != d.Spikes() {
		t.Fatalf("restored Spikes() = %d, want %d", fresh.Spikes(), d.Spikes())
	}
	// Both must agree on every future verdict.
	for i := 0; i < 30; i++ {
		v := 1.0 + float64(i%5)*0.02
		if i%7 == 0 {
			v = 1e4
		}
		s1, k1 := d.Observe(v)
		s2, k2 := fresh.Observe(v)
		if s1 != s2 || k1 != k2 {
			t.Fatalf("step %d: verdicts diverge after restore: (%v,%v) vs (%v,%v)", i, s1, k1, s2, k2)
		}
	}
}

// TestSpikeDetectorRollbackExport: ExportState(rollback=true) must return
// the state as it was before the most recent Observe — the one-deep
// rollback the repair cut needs.
func TestSpikeDetectorRollbackExport(t *testing.T) {
	d := NewSpikeDetector(5, 6, false)
	for i := 0; i < 9; i++ {
		d.Observe(2.0)
	}
	pre := d.ExportState(false)
	d.Observe(3.0)
	back := d.ExportState(true)
	if len(pre) != len(back) {
		t.Fatalf("rollback length %d, want %d", len(back), len(pre))
	}
	for i := range pre {
		if pre[i] != back[i] {
			t.Fatalf("rollback state diverges at %d: %v vs %v", i, back[i], pre[i])
		}
	}
}

func TestSpikeDetectorCloneIndependent(t *testing.T) {
	d := NewSpikeDetector(5, 6, false)
	for i := 0; i < 7; i++ {
		d.Observe(1.0)
	}
	c := d.Clone()
	d.Observe(1e6)
	if c.Spikes() != 0 {
		t.Fatal("clone shares spike counter")
	}
	s1, _ := c.Observe(1e6)
	if !s1 {
		t.Fatal("clone lost window history")
	}
}

func TestSpikeDetectorObserveAllocs(t *testing.T) {
	d := NewSpikeDetector(16, 6, false)
	for i := 0; i < 16; i++ {
		d.Observe(1.0)
	}
	allocs := testing.AllocsPerRun(100, func() { d.Observe(1.0) })
	if allocs > 0 {
		t.Fatalf("Observe allocates %.1f per call in steady state", allocs)
	}
}
