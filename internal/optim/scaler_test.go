package optim

import (
	"math"
	"testing"
)

func TestLossScalerRoundTrip(t *testing.T) {
	s := NewLossScaler(1024, 10)
	g := []float32{1, -2, 0.5}
	s.ScaleGrads(g)
	if g[0] != 1024 {
		t.Fatalf("scaled g = %v", g)
	}
	if !s.Unscale(g) {
		t.Fatal("finite grads reported overflow")
	}
	if g[0] != 1 || g[1] != -2 || g[2] != 0.5 {
		t.Fatalf("round trip broke values: %v", g)
	}
}

func TestLossScalerOverflowHalvesAndSkips(t *testing.T) {
	s := NewLossScaler(1024, 10)
	g := []float32{float32(math.Inf(1))}
	if s.Unscale(g) {
		t.Fatal("inf grads not detected")
	}
	if s.Scale() != 512 {
		t.Fatalf("scale = %v, want 512", s.Scale())
	}
	if s.Skipped != 1 {
		t.Fatalf("Skipped = %d", s.Skipped)
	}
	g2 := []float32{float32(math.NaN())}
	if s.Unscale(g2) {
		t.Fatal("nan grads not detected")
	}
	if s.Scale() != 256 {
		t.Fatalf("scale = %v, want 256", s.Scale())
	}
}

func TestLossScalerGrowsAfterStreak(t *testing.T) {
	s := NewLossScaler(64, 3)
	g := []float32{1}
	for i := 0; i < 3; i++ {
		s.ScaleGrads(g)
		if !s.Unscale(g) {
			t.Fatal("overflow on finite grads")
		}
	}
	if s.Scale() != 128 {
		t.Fatalf("scale = %v, want 128 after streak", s.Scale())
	}
	// overflow resets the streak
	s.Unscale([]float32{float32(math.Inf(-1))})
	if s.Scale() != 64 {
		t.Fatalf("scale = %v after overflow", s.Scale())
	}
}

func TestLossScalerBounds(t *testing.T) {
	s := NewLossScaler(2, 1)
	for i := 0; i < 10; i++ {
		s.Unscale([]float32{float32(math.NaN())})
	}
	if s.Scale() < 1 {
		t.Fatalf("scale fell below floor: %v", s.Scale())
	}
	s2 := NewLossScaler(1<<23, 1)
	for i := 0; i < 10; i++ {
		g := []float32{1}
		s2.ScaleGrads(g)
		s2.Unscale(g)
	}
	if s2.Scale() > 1<<24 {
		t.Fatalf("scale exceeded cap: %v", s2.Scale())
	}
}

func TestLossScalerDefaults(t *testing.T) {
	s := NewLossScaler(0, 0)
	if s.Scale() != 1<<14 {
		t.Fatalf("default scale = %v", s.Scale())
	}
}

func TestConstantLR(t *testing.T) {
	if ConstantLR(0.1).LR(12345) != 0.1 {
		t.Fatal("constant LR not constant")
	}
}

func TestWarmupCosineShape(t *testing.T) {
	sch := WarmupCosine{Base: 1.0, Floor: 0.1, Warmup: 10, Total: 110}
	// warm-up is linear and increasing
	for i := 1; i < 10; i++ {
		if sch.LR(i) <= sch.LR(i-1) {
			t.Fatalf("warmup not increasing at %d", i)
		}
	}
	// peak ≈ base right after warmup
	if math.Abs(sch.LR(10)-1.0) > 1e-9 {
		t.Fatalf("post-warmup LR = %v", sch.LR(10))
	}
	// decays monotonically to the floor
	for i := 11; i < 110; i++ {
		if sch.LR(i) > sch.LR(i-1)+1e-12 {
			t.Fatalf("decay not monotone at %d", i)
		}
	}
	if math.Abs(sch.LR(109)-0.1) > 0.01 {
		t.Fatalf("end LR = %v, want ≈ floor", sch.LR(109))
	}
	if sch.LR(1000) != 0.1 {
		t.Fatalf("past-total LR = %v, want floor", sch.LR(1000))
	}
	// halfway point is the midpoint of base and floor
	mid := sch.LR(60)
	if math.Abs(mid-0.55) > 0.02 {
		t.Fatalf("midpoint LR = %v, want ≈ 0.55", mid)
	}
}

func TestAdamWSetLR(t *testing.T) {
	o := NewAdamW(1, DefaultAdamW(0.1))
	o.SetLR(0.2)
	if o.LR() != 0.2 {
		t.Fatalf("LR = %v", o.LR())
	}
	w := []float32{1}
	o.Step(w, []float32{1})
	// first AdamW step ≈ lr·sign(g)
	if math.Abs(float64(w[0])-(1-0.2)) > 1e-3 {
		t.Fatalf("step did not use new LR: w=%v", w[0])
	}
}
