package optim

import (
	"math"
	"sort"
)

// SpikeDetector is a windowed gradient-norm anomaly detector: it keeps the
// last Window accepted global grad norms and flags a new norm as a spike
// when it sits more than Threshold robust standard deviations above the
// window median, using the median absolute deviation (MAD) as the scale
// estimate (σ ≈ 1.4826·MAD for Gaussian noise). Median+MAD survives the
// contamination that defeats mean+stddev: a handful of earlier spikes in
// the window barely move either statistic.
//
// It extends the non-finite Scaler guard to *finite* anomalies — a loss
// blow-up, a corrupt batch, or a bit flip that landed in low-order
// gradient bits below the checksum layers' detection floor. Verdicts are
// driven by the globally all-reduced Σg², so every rank (and every buddy
// shadow replay) reaches the identical decision without extra messages —
// the same lock-step trick the loss scaler uses.
//
// Like Scaler, a detector carried in shared Options is a template: each
// rank Clones its own copy and the copies evolve in lock-step.
type SpikeDetector struct {
	// Window is the number of accepted norms the detector remembers.
	Window int
	// Threshold is the verdict boundary in robust standard deviations.
	Threshold float64
	// Skip, when true, makes detected spikes skip the optimizer step
	// (like the non-finite guard); otherwise they are only counted.
	Skip bool

	norms  []float64 // ring of accepted norms, oldest first
	spikes int

	// One-deep rollback for the elastic repair cut: state before the most
	// recent Observe, so a rank that stepped past the cut can export the
	// detector as of the cut (mirrors the trainer's rb* stash).
	prevNorms  []float64
	prevSpikes int

	scratch []float64
	devs    []float64
}

// NewSpikeDetector builds a detector. window must be ≥ 3 to make the
// median meaningful; threshold ≤ 0 defaults to 6 (a deliberately loose
// boundary: legitimate training produces heavy-tailed norm sequences).
func NewSpikeDetector(window int, threshold float64, skip bool) *SpikeDetector {
	if window < 3 {
		window = 3
	}
	if threshold <= 0 {
		threshold = 6
	}
	return &SpikeDetector{Window: window, Threshold: threshold, Skip: skip}
}

// Clone returns an independent copy (per-rank instantiation).
func (d *SpikeDetector) Clone() *SpikeDetector {
	c := &SpikeDetector{Window: d.Window, Threshold: d.Threshold, Skip: d.Skip, spikes: d.spikes}
	c.norms = append([]float64(nil), d.norms...)
	return c
}

// median returns the median of xs using the detector's scratch buffer.
func (d *SpikeDetector) median(xs []float64) float64 {
	if cap(d.scratch) < len(xs) {
		d.scratch = make([]float64, len(xs))
	}
	s := d.scratch[:len(xs)]
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Observe feeds the globally agreed Σg² of one step and returns the
// verdict: spike reports an anomaly, skipStep whether the caller should
// drop the optimizer step for it. NaN sums are the existing non-finite
// guard's territory and pass through untouched (no spike, no skip, not
// recorded); an *infinite* sum, however, is a magnitude anomaly by
// definition — the scalar all-reduce carries Σg² as float32, so gradients
// past ~1e19 in norm arrive as +Inf — and is flagged even before the
// window has a baseline. A flagged norm is not admitted into the window,
// so one anomaly cannot drag the baseline toward itself.
func (d *SpikeDetector) Observe(sumSq float64) (spike, skipStep bool) {
	d.prevNorms = append(d.prevNorms[:0], d.norms...)
	d.prevSpikes = d.spikes
	if math.IsNaN(sumSq) {
		return false, false
	}
	if math.IsInf(sumSq, 0) {
		d.spikes++
		return true, d.Skip
	}
	norm := math.Sqrt(sumSq)
	if len(d.norms) >= 3 {
		med := d.median(d.norms)
		if cap(d.devs) < len(d.norms) {
			d.devs = make([]float64, len(d.norms))
		}
		devs := d.devs[:len(d.norms)]
		for i, x := range d.norms {
			devs[i] = math.Abs(x - med)
		}
		mad := d.median(devs)
		// Robust σ; floor at a relative epsilon of the median so a
		// constant-norm window (MAD = 0) doesn't flag every fluctuation.
		sigma := 1.4826 * mad
		if floor := 1e-12 * math.Abs(med); sigma < floor {
			sigma = floor
		}
		if sigma > 0 && norm-med > d.Threshold*sigma {
			d.spikes++
			return true, d.Skip
		}
	}
	d.norms = append(d.norms, norm)
	if len(d.norms) > d.Window {
		d.norms = d.norms[1:]
	}
	return false, false
}

// Spikes returns the number of spikes detected so far.
func (d *SpikeDetector) Spikes() int { return d.spikes }

// ExportState serializes the detector (spike count, then window contents,
// oldest first) for checkpoint/harvest snapshots. rollback selects the
// pre-Observe state — the repair-cut export for a rank that already
// consumed the in-flight iteration's norm.
func (d *SpikeDetector) ExportState(rollback bool) []float64 {
	norms, spikes := d.norms, d.spikes
	if rollback {
		norms, spikes = d.prevNorms, d.prevSpikes
	}
	out := make([]float64, 0, len(norms)+1)
	out = append(out, float64(spikes))
	return append(out, norms...)
}

// RestoreState loads a serialized detector state.
func (d *SpikeDetector) RestoreState(st []float64) {
	if len(st) == 0 {
		d.norms, d.spikes = d.norms[:0], 0
		return
	}
	d.spikes = int(st[0])
	d.norms = append(d.norms[:0], st[1:]...)
	d.prevNorms = append(d.prevNorms[:0], d.norms...)
	d.prevSpikes = d.spikes
}
