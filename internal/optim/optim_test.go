package optim

import (
	"math"
	"testing"
)

func TestSGDStep(t *testing.T) {
	w := []float32{1, 2}
	g := []float32{0.5, -0.5}
	s := NewSGD(2, 0.1, 0)
	s.Step(w, g)
	if math.Abs(float64(w[0])-0.95) > 1e-6 || math.Abs(float64(w[1])-2.05) > 1e-6 {
		t.Fatalf("w = %v", w)
	}
	if s.StateBytes() != 0 {
		t.Fatalf("momentum-free SGD state = %d", s.StateBytes())
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	w := []float32{0}
	s := NewSGD(1, 1.0, 0.5)
	s.Step(w, []float32{1}) // vel=1, w=-1
	s.Step(w, []float32{1}) // vel=1.5, w=-2.5
	if math.Abs(float64(w[0])+2.5) > 1e-6 {
		t.Fatalf("w = %v", w)
	}
	if s.StateBytes() != 4 {
		t.Fatalf("StateBytes = %d", s.StateBytes())
	}
}

func TestAdamWFirstStepIsLR(t *testing.T) {
	// With bias correction, the first AdamW step is ≈ lr·sign(g).
	w := []float32{1, 1}
	g := []float32{0.3, -0.7}
	o := NewAdamW(2, DefaultAdamW(0.01))
	o.Step(w, g)
	if math.Abs(float64(w[0])-(1-0.01)) > 1e-4 {
		t.Fatalf("w[0] = %v, want ≈ 0.99", w[0])
	}
	if math.Abs(float64(w[1])-(1+0.01)) > 1e-4 {
		t.Fatalf("w[1] = %v, want ≈ 1.01", w[1])
	}
}

func TestAdamWConvergesOnQuadratic(t *testing.T) {
	// minimise (w-3)²
	w := []float32{0}
	o := NewAdamW(1, DefaultAdamW(0.1))
	for i := 0; i < 500; i++ {
		g := []float32{2 * (w[0] - 3)}
		o.Step(w, g)
	}
	if math.Abs(float64(w[0])-3) > 0.05 {
		t.Fatalf("w = %v, want ≈ 3", w[0])
	}
}

func TestAdamWDeterministic(t *testing.T) {
	mk := func() []float32 {
		w := []float32{1, -2, 3}
		o := NewAdamW(3, DefaultAdamW(0.05))
		for i := 0; i < 10; i++ {
			o.Step(w, []float32{0.1, -0.2, 0.3})
		}
		return w
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("AdamW nondeterministic")
		}
	}
}

func TestAdamWWeightDecay(t *testing.T) {
	cfg := DefaultAdamW(0.1)
	cfg.WeightDecay = 0.1
	o := NewAdamW(1, cfg)
	w := []float32{10}
	o.Step(w, []float32{0})
	// zero grad → pure decay: w *= (1 − lr·wd)
	want := 10 * (1 - 0.1*0.1)
	if math.Abs(float64(w[0])-want) > 1e-4 {
		t.Fatalf("w = %v, want %v", w[0], want)
	}
}

func TestAdamWSizeMismatchPanics(t *testing.T) {
	o := NewAdamW(2, DefaultAdamW(0.1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	o.Step([]float32{1}, []float32{1})
}

func TestAdamWStateBytes(t *testing.T) {
	o := NewAdamW(100, DefaultAdamW(0.1))
	if o.StateBytes() != 800 {
		t.Fatalf("StateBytes = %d, want 800", o.StateBytes())
	}
}

func TestClipByGlobalNorm(t *testing.T) {
	g := []float32{3, 4} // norm 5
	n := ClipByGlobalNorm(g, 1)
	if math.Abs(n-5) > 1e-6 {
		t.Fatalf("returned norm %v", n)
	}
	if math.Abs(GlobalNorm(g)-1) > 1e-6 {
		t.Fatalf("clipped norm = %v", GlobalNorm(g))
	}
	// below the cap: untouched
	g2 := []float32{0.3, 0.4}
	ClipByGlobalNorm(g2, 1)
	if g2[0] != 0.3 || g2[1] != 0.4 {
		t.Fatal("clip modified small gradient")
	}
}
