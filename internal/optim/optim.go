// Package optim implements the optimizers used by the training runtimes.
// Optimizers operate on flat float32 vectors so that a WeiPipe chunk owner
// can step exactly the parameters it owns; state is fp32 throughout,
// matching the paper's mixed-precision recipe (fp32 optimizer state
// distributed among workers, never transmitted).
package optim

import (
	"fmt"
	"math"
)

// Optimizer updates a flat parameter vector from a same-length gradient.
type Optimizer interface {
	// Step applies one update of w given gradient g. len(w) must equal the
	// size the optimizer was built with; g is not modified.
	Step(w, g []float32)
	// StateBytes reports the optimizer-state footprint in bytes (used by
	// the memory model and tests).
	StateBytes() int
}

// AdamWConfig holds AdamW hyperparameters. Zero values select the usual
// defaults via NewAdamW.
type AdamWConfig struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
}

// DefaultAdamW returns the paper-typical hyperparameters.
func DefaultAdamW(lr float64) AdamWConfig {
	return AdamWConfig{LR: lr, Beta1: 0.9, Beta2: 0.95, Eps: 1e-8, WeightDecay: 0.0}
}

// AdamW is the decoupled-weight-decay Adam optimizer with fp32 moments.
type AdamW struct {
	cfg  AdamWConfig
	step int
	m    []float32
	v    []float32
}

// NewAdamW builds an AdamW for a parameter vector of the given size.
func NewAdamW(size int, cfg AdamWConfig) *AdamW {
	if cfg.Beta1 == 0 {
		cfg.Beta1 = 0.9
	}
	if cfg.Beta2 == 0 {
		cfg.Beta2 = 0.95
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1e-8
	}
	return &AdamW{cfg: cfg, m: make([]float32, size), v: make([]float32, size)}
}

// Step implements Optimizer.
func (o *AdamW) Step(w, g []float32) {
	if len(w) != len(o.m) || len(g) != len(o.m) {
		panic(fmt.Sprintf("optim: AdamW size mismatch: state %d, w %d, g %d", len(o.m), len(w), len(g)))
	}
	o.step++
	b1, b2 := o.cfg.Beta1, o.cfg.Beta2
	c1 := 1 - math.Pow(b1, float64(o.step))
	c2 := 1 - math.Pow(b2, float64(o.step))
	lr := o.cfg.LR
	wd := float32(o.cfg.WeightDecay * lr)
	for i := range w {
		gi := float64(g[i])
		mi := b1*float64(o.m[i]) + (1-b1)*gi
		vi := b2*float64(o.v[i]) + (1-b2)*gi*gi
		o.m[i] = float32(mi)
		o.v[i] = float32(vi)
		mhat := mi / c1
		vhat := vi / c2
		upd := lr * mhat / (math.Sqrt(vhat) + o.cfg.Eps)
		w[i] -= float32(upd)
		if wd != 0 {
			w[i] -= wd * w[i]
		}
	}
}

// StateBytes implements Optimizer: two fp32 moments per parameter.
func (o *AdamW) StateBytes() int { return 8 * len(o.m) }

// ExportState returns the optimizer's step count and copies of its moment
// vectors, for checkpointing.
func (o *AdamW) ExportState() (step int, m, v []float32) {
	m = make([]float32, len(o.m))
	v = make([]float32, len(o.v))
	copy(m, o.m)
	copy(v, o.v)
	return o.step, m, v
}

// CopyStateInto copies the moment vectors into caller-provided buffers
// (which must match the optimizer's size) and returns the step count. It is
// the allocation-free sibling of ExportState, used by the per-iteration
// rollback stash of the elastic recovery layer.
func (o *AdamW) CopyStateInto(m, v []float32) int {
	if len(m) != len(o.m) || len(v) != len(o.v) {
		panic(fmt.Sprintf("optim: CopyStateInto size mismatch: state %d, m %d, v %d",
			len(o.m), len(m), len(v)))
	}
	copy(m, o.m)
	copy(v, o.v)
	return o.step
}

// VisitState hands the optimizer's live moment vectors to f without
// copying. The integrity layer's resident-state guard checksums them
// through this (and the bit-flip chaos injector corrupts them through it);
// f must not retain the slices.
func (o *AdamW) VisitState(f func(m, v []float32)) { f(o.m, o.v) }

// LoadState restores the optimizer from a checkpointed step count and moment
// vectors (copied in). The vectors must match the optimizer's size.
func (o *AdamW) LoadState(step int, m, v []float32) error {
	if len(m) != len(o.m) || len(v) != len(o.v) {
		return fmt.Errorf("optim: AdamW state size mismatch: have %d, loading m=%d v=%d",
			len(o.m), len(m), len(v))
	}
	o.step = step
	copy(o.m, m)
	copy(o.v, v)
	return nil
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      []float32
}

// NewSGD builds an SGD optimizer for a vector of the given size.
func NewSGD(size int, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum}
	if momentum != 0 {
		s.vel = make([]float32, size)
	} else {
		s.vel = make([]float32, 0)
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step(w, g []float32) {
	if s.Momentum == 0 {
		lr := float32(s.LR)
		for i := range w {
			w[i] -= lr * g[i]
		}
		return
	}
	if len(s.vel) != len(w) {
		panic("optim: SGD size mismatch")
	}
	mu := float32(s.Momentum)
	lr := float32(s.LR)
	for i := range w {
		s.vel[i] = mu*s.vel[i] + g[i]
		w[i] -= lr * s.vel[i]
	}
}

// StateBytes implements Optimizer.
func (s *SGD) StateBytes() int { return 4 * len(s.vel) }

// GlobalNorm returns the L2 norm of g.
func GlobalNorm(g []float32) float64 {
	var ss float64
	for _, v := range g {
		ss += float64(v) * float64(v)
	}
	return math.Sqrt(ss)
}

// ClipByGlobalNorm scales g in place so its L2 norm is at most maxNorm and
// returns the norm before clipping.
func ClipByGlobalNorm(g []float32, maxNorm float64) float64 {
	n := GlobalNorm(g)
	if n > maxNorm && n > 0 {
		s := float32(maxNorm / n)
		for i := range g {
			g[i] *= s
		}
	}
	return n
}
