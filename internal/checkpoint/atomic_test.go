package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weipipe/internal/model"
)

// Crash-safe Save contract: at every moment during (and after) a save, the
// target path holds either the previous complete checkpoint or the new
// complete checkpoint — a write interrupted at any byte leaves either no
// file or a loadable old one, never a truncated hybrid.

func snapWithStep(step int64) *Snapshot {
	s := FromModel(model.Build(ckCfg()))
	s.Step = step
	return s
}

func TestSaveAtomicReplacesPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wpck")
	if err := Save(path, snapWithStep(1)); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, snapWithStep(2)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 2 {
		t.Fatalf("loaded step %d, want 2", got.Step)
	}
	// No temp debris survives a successful save.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// Simulate a crash at every possible truncation point of the write: copy
// the bytes a full save produces, truncate at i, and verify that a reader
// finding such a partial *temp* file rejects it — and that the real target
// path still loads the previous checkpoint, because Save never touches the
// target until the temp file is complete and fsynced.
func TestPartialWriteNeverVisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.wpck")
	if err := Save(path, snapWithStep(1)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, snapWithStep(2)); err != nil {
		t.Fatal(err)
	}

	// Every proper prefix of the serialised form must fail to load: a
	// crash mid-write cannot manufacture a valid checkpoint.
	stride := len(full)/64 + 1
	for i := 0; i < len(full); i += stride {
		partial := filepath.Join(dir, fmt.Sprintf("partial-%d.wpck", i))
		if err := os.WriteFile(partial, full[:i], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(partial); err == nil {
			t.Fatalf("truncated checkpoint (%d of %d bytes) loaded without error", i, len(full))
		}
	}

	// The target itself still holds the latest complete save.
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 2 {
		t.Fatalf("target step %d, want 2", got.Step)
	}
}

func TestSaveRotateKeepsLastK(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.wpck")
	const keep = 3
	for step := int64(1); step <= 5; step++ {
		if err := SaveRotate(path, snapWithStep(step), keep); err != nil {
			t.Fatal(err)
		}
	}
	// Latest at path, older generations shifted down, nothing beyond k.
	for i, wantStep := range []int64{5, 4, 3} {
		p := path
		if i > 0 {
			p = fmt.Sprintf("%s.%d", path, i)
		}
		got, err := Load(p)
		if err != nil {
			t.Fatalf("generation %d: %v", i, err)
		}
		if got.Step != wantStep {
			t.Fatalf("generation %d holds step %d, want %d", i, got.Step, wantStep)
		}
	}
	if _, err := os.Stat(fmt.Sprintf("%s.%d", path, keep)); !os.IsNotExist(err) {
		t.Fatalf("generation %d should have been dropped", keep)
	}
}

func TestSaveRotateKeepOneMatchesSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wpck")
	for step := int64(1); step <= 3; step++ {
		if err := SaveRotate(path, snapWithStep(step), 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 3 {
		t.Fatalf("step %d, want 3", got.Step)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatal("keep=1 must not create rotated generations")
	}
}
