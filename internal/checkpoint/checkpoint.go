// Package checkpoint serialises models (and optionally optimizer moments)
// to a compact, versioned, checksummed binary format, so long training
// runs can stop and resume — table stakes for a training system, and the
// piece that lets the distributed runtimes hand a trained model to the
// generation tooling.
//
// Layout (little-endian):
//
//	magic "WPCK" | version u32 | config block | section count u32 |
//	  per section: name len u32, name, elem count u64, f32 data |
//	crc32 of everything above
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"weipipe/internal/model"
)

const (
	magic   = "WPCK"
	version = 1

	// DigestSection is the reserved section name carrying per-section CRC32
	// digests: four byte-valued float32 elements (little-endian CRC bytes)
	// per data section, covering the weights first and then every named
	// section in sorted order. Written by Write, stripped and verified by
	// Read. The global file CRC already rejects wire/disk corruption of the
	// *file*; the per-section digests additionally localise it ("adam.m is
	// corrupt") and — because they are recomputed from the in-memory vectors
	// at save time — catch corruption that happened in memory before the
	// save, which the file CRC would faithfully preserve.
	DigestSection = "digest.crc32"
)

// Snapshot is the serialisable state of a training run.
type Snapshot struct {
	Config model.Config
	// Weights is the full flat parameter vector in model wire order.
	Weights []float32
	// Sections holds named auxiliary vectors (e.g. "adam.m", "adam.v").
	Sections map[string][]float32
	// Step is the optimizer step count at save time.
	Step int64
}

// FromModel captures a model's weights into a snapshot.
func FromModel(m *model.Model) *Snapshot {
	w := make([]float32, m.NumParams())
	m.FlattenChunk(0, len(m.Modules), w)
	return &Snapshot{Config: m.Cfg, Weights: w, Sections: map[string][]float32{}}
}

// ApplyTo writes the snapshot's weights into a model built with the same
// configuration.
func (s *Snapshot) ApplyTo(m *model.Model) error {
	if m.NumParams() != len(s.Weights) {
		return fmt.Errorf("checkpoint: model has %d params, snapshot %d", m.NumParams(), len(s.Weights))
	}
	m.SetChunk(0, len(m.Modules), s.Weights)
	return nil
}

// Restore builds a fresh model from the snapshot's config and loads the
// weights into it.
func (s *Snapshot) Restore() (*model.Model, error) {
	m := model.Build(s.Config)
	if err := s.ApplyTo(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Write serialises the snapshot.
func Write(w io.Writer, s *Snapshot) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	cfg := s.Config
	for _, v := range []int64{version, int64(cfg.Vocab), int64(cfg.Hidden), int64(cfg.Layers),
		int64(cfg.Heads), int64(cfg.FFNDim), int64(cfg.MaxSeq), int64(cfg.Seed), s.Step} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// weights as the unnamed first section, then named sections sorted by
	// insertion-independent ordering (we sort names for determinism), then
	// the per-section digest vector last so a reader can verify each data
	// section against the checksum its writer computed in memory.
	names := sortedNames(s.Sections)
	if err := binary.Write(bw, binary.LittleEndian, int64(2+len(names))); err != nil {
		return err
	}
	if err := writeSection(bw, "weights", s.Weights); err != nil {
		return err
	}
	for _, n := range names {
		if err := writeSection(bw, n, s.Sections[n]); err != nil {
			return err
		}
	}
	if err := writeSection(bw, DigestSection, digestVector(s, names)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// checksum trailer (not itself checksummed)
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// sectionCRC is the CRC32-IEEE of a section's little-endian float32 bit
// patterns — the same bytes writeSection puts on disk, computed without
// materialising them.
func sectionCRC(data []float32) uint32 {
	var buf [512]byte
	crc := uint32(0)
	for i := 0; i < len(data); {
		n := len(data) - i
		if n > len(buf)/4 {
			n = len(buf) / 4
		}
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint32(buf[j*4:], math.Float32bits(data[i+j]))
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n*4])
		i += n
	}
	return crc
}

// digestVector encodes one CRC32 per data section (weights first, then the
// given names in order) as four byte-valued float32 elements each — values
// 0..255 are exact in every float precision, so the digests survive any
// lossy re-encoding a snapshot's payload might legitimately go through.
func digestVector(s *Snapshot, names []string) []float32 {
	out := make([]float32, 0, 4*(1+len(names)))
	appendCRC := func(c uint32) {
		out = append(out, float32(c&0xff), float32(c>>8&0xff), float32(c>>16&0xff), float32(c>>24&0xff))
	}
	appendCRC(sectionCRC(s.Weights))
	for _, n := range names {
		appendCRC(sectionCRC(s.Sections[n]))
	}
	return out
}

// verifyDigests checks every data section against the digest vector read
// from the file. A nil digest (old file) verifies vacuously; a present but
// malformed or mismatched digest is an error naming the bad section.
func verifyDigests(s *Snapshot, digest []float32) error {
	if digest == nil {
		return nil
	}
	names := sortedNames(s.Sections)
	if len(digest) != 4*(1+len(names)) {
		return fmt.Errorf("checkpoint: digest section covers %d entries, want %d", len(digest)/4, 1+len(names))
	}
	decode := func(d []float32) uint32 {
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	}
	if got, want := sectionCRC(s.Weights), decode(digest[:4]); got != want {
		return fmt.Errorf("checkpoint: section %q digest mismatch: want %08x got %08x", "weights", want, got)
	}
	for i, n := range names {
		d := digest[4*(1+i) : 4*(2+i)]
		if got, want := sectionCRC(s.Sections[n]), decode(d); got != want {
			return fmt.Errorf("checkpoint: section %q digest mismatch: want %08x got %08x", n, want, got)
		}
	}
	return nil
}

// sortedNames lists the named data sections in deterministic order. The
// digest section is metadata about the others, not a data section, so it is
// excluded — Write appends it explicitly and Read strips it before handing
// the snapshot back.
func sortedNames(m map[string][]float32) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		if n == DigestSection {
			continue
		}
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ { // insertion sort; tiny n
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func writeSection(w io.Writer, name string, data []float32) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(name))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(data))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// Read deserialises a snapshot, verifying magic, version and checksum.
// All reads are exact-size (no buffered lookahead), so the running checksum
// covers precisely the payload bytes.
func Read(r io.Reader) (*Snapshot, error) {
	s, _, err := readVerify(r)
	return s, err
}

// readVerify is Read plus a report of whether the file carried a
// per-section digest vector (pre-digest files verify by global CRC only).
func readVerify(r io.Reader) (*Snapshot, bool, error) {
	crc := crc32.NewIEEE()
	br := io.TeeReader(r, crc)

	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, false, fmt.Errorf("checkpoint: %w", err)
	}
	if string(head) != magic {
		return nil, false, fmt.Errorf("checkpoint: bad magic %q", head)
	}
	var fields [9]int64
	for i := range fields {
		if err := binary.Read(br, binary.LittleEndian, &fields[i]); err != nil {
			return nil, false, err
		}
	}
	if fields[0] != version {
		return nil, false, fmt.Errorf("checkpoint: unsupported version %d", fields[0])
	}
	s := &Snapshot{
		Config: model.Config{
			Vocab: int(fields[1]), Hidden: int(fields[2]), Layers: int(fields[3]),
			Heads: int(fields[4]), FFNDim: int(fields[5]), MaxSeq: int(fields[6]),
			Seed: uint64(fields[7]),
		},
		Sections: map[string][]float32{},
		Step:     fields[8],
	}
	var nSections int64
	if err := binary.Read(br, binary.LittleEndian, &nSections); err != nil {
		return nil, false, err
	}
	if nSections < 1 || nSections > 1<<16 {
		return nil, false, fmt.Errorf("checkpoint: implausible section count %d", nSections)
	}
	for i := int64(0); i < nSections; i++ {
		name, data, err := readSection(br)
		if err != nil {
			return nil, false, err
		}
		if name == "weights" {
			s.Weights = data
		} else {
			s.Sections[name] = data
		}
	}
	wantSum := crc.Sum32()
	var gotSum uint32
	if err := binary.Read(r, binary.LittleEndian, &gotSum); err != nil {
		return nil, false, fmt.Errorf("checkpoint: missing checksum: %w", err)
	}
	if gotSum != wantSum {
		return nil, false, fmt.Errorf("checkpoint: checksum mismatch (corrupt file)")
	}
	if s.Weights == nil {
		return nil, false, fmt.Errorf("checkpoint: no weights section")
	}
	digest, hasDigest := s.Sections[DigestSection]
	if hasDigest {
		delete(s.Sections, DigestSection)
		if err := verifyDigests(s, digest); err != nil {
			return nil, false, err
		}
	}
	return s, hasDigest, nil
}

// Verify reads and fully checks a checkpoint file — magic, version, global
// CRC and (when present) the per-section digests — without keeping the
// state. It reports the data sections found and whether the file carried
// per-section digests, for scan tooling (weipipe-train -verify-ckpt).
func Verify(path string) (sections []string, digested bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	s, digested, err := readVerify(f)
	if err != nil {
		return nil, digested, err
	}
	return append([]string{"weights"}, sortedNames(s.Sections)...), digested, nil
}

func readSection(r io.Reader) (string, []float32, error) {
	var nameLen int64
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return "", nil, err
	}
	if nameLen < 0 || nameLen > 4096 {
		return "", nil, fmt.Errorf("checkpoint: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", nil, err
	}
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", nil, err
	}
	if n < 0 || n > 1<<34 {
		return "", nil, fmt.Errorf("checkpoint: implausible section size %d", n)
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return string(name), data, nil
}

// Marshal serialises a snapshot to bytes — the wire form used when a
// snapshot travels between processes (seeding a freshly admitted spare
// rank) instead of to disk. The format is identical to the file format,
// checksum trailer included.
func Marshal(s *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal deserialises a snapshot produced by Marshal (or read from a
// checkpoint file), verifying magic, version and checksum.
func Unmarshal(b []byte) (*Snapshot, error) {
	s, err := Read(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Save writes a snapshot to a file crash-safely: the bytes go to a unique
// temp file in the destination directory, are fsynced, and only then
// atomically renamed over the target (with the directory entry fsynced
// too). A crash or kill at any point leaves either the previous complete
// checkpoint or the new complete checkpoint at path — never a truncated
// hybrid — and the checksum trailer rejects any partial temp file that is
// mistaken for a checkpoint.
func Save(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := Write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself: fsync the directory so the new entry
	// survives a power loss. Some platforms refuse to sync directories;
	// that is not worth failing the checkpoint over.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// SaveRotate is Save with last-k retention: before writing, the existing
// generations shift down (path → path.1 → … → path.k−1, the oldest
// dropped), so the k most recent complete checkpoints survive on disk.
// keep ≤ 1 retains only the latest, exactly like Save.
func SaveRotate(path string, s *Snapshot, keep int) error {
	if keep > 1 {
		os.Remove(fmt.Sprintf("%s.%d", path, keep-1))
		for i := keep - 2; i >= 1; i-- {
			// Rename failures here mean the generation doesn't exist yet;
			// rotation is best-effort by design.
			_ = os.Rename(fmt.Sprintf("%s.%d", path, i), fmt.Sprintf("%s.%d", path, i+1))
		}
		_ = os.Rename(path, path+".1")
	}
	return Save(path, s)
}

// Load reads a snapshot from a file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
