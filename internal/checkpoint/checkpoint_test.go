package checkpoint

import (
	"bytes"
	"path/filepath"
	"testing"

	"weipipe/internal/model"
)

func ckCfg() model.Config {
	return model.Config{Vocab: 17, Hidden: 8, Layers: 2, Heads: 2, MaxSeq: 8, Seed: 5}
}

func TestRoundTripBuffer(t *testing.T) {
	m := model.Build(ckCfg())
	snap := FromModel(m)
	snap.Step = 42
	snap.Sections["adam.m"] = []float32{1, 2, 3}
	snap.Sections["adam.v"] = []float32{4, 5}

	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 {
		t.Fatalf("step = %d", got.Step)
	}
	if got.Config != m.Cfg {
		t.Fatalf("config %+v != %+v", got.Config, m.Cfg)
	}
	if len(got.Weights) != len(snap.Weights) {
		t.Fatalf("weights len %d != %d", len(got.Weights), len(snap.Weights))
	}
	for i := range got.Weights {
		if got.Weights[i] != snap.Weights[i] {
			t.Fatalf("weight %d differs", i)
		}
	}
	if len(got.Sections["adam.m"]) != 3 || got.Sections["adam.v"][1] != 5 {
		t.Fatalf("sections = %v", got.Sections)
	}
}

func TestRestoreRebuildsModel(t *testing.T) {
	m := model.Build(ckCfg())
	// perturb a weight so we know the load carries state, not the seed
	m.Blocks[0].Attn.Wq.Data[0] = 1234
	snap := FromModel(m)

	m2, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Blocks[0].Attn.Wq.Data[0] != 1234 {
		t.Fatal("restored model lost mutated weight")
	}
	if m2.NumParams() != m.NumParams() {
		t.Fatal("param count mismatch")
	}
}

func TestSaveLoadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.wpck")
	m := model.Build(ckCfg())
	if err := Save(path, FromModel(m)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.Hidden != 8 {
		t.Fatalf("config = %+v", got.Config)
	}
	// no stray temp file
	if _, err := Load(path + ".tmp"); err == nil {
		t.Fatal("temp file left behind")
	}
}

func TestCorruptionDetected(t *testing.T) {
	m := model.Build(ckCfg())
	var buf bytes.Buffer
	if err := Write(&buf, FromModel(m)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// flip a payload byte
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// truncate
	if _, err := Read(bytes.NewReader(raw[:len(raw)-8])); err == nil {
		t.Fatal("truncated file accepted")
	}

	// bad magic
	bad2 := append([]byte(nil), raw...)
	bad2[0] = 'X'
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestApplyToWrongModelRejected(t *testing.T) {
	m := model.Build(ckCfg())
	snap := FromModel(m)
	other := model.Build(model.Config{Vocab: 17, Hidden: 16, Layers: 2, Heads: 2, MaxSeq: 8, Seed: 5})
	if err := snap.ApplyTo(other); err == nil {
		t.Fatal("mismatched model accepted")
	}
}

func TestSectionOrderingDeterministic(t *testing.T) {
	m := model.Build(ckCfg())
	write := func(order []string) []byte {
		snap := FromModel(m)
		for _, n := range order {
			snap.Sections[n] = []float32{1}
		}
		var buf bytes.Buffer
		if err := Write(&buf, snap); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := write([]string{"zz", "aa", "mm"})
	b := write([]string{"mm", "zz", "aa"})
	if !bytes.Equal(a, b) {
		t.Fatal("section insertion order changed the encoding")
	}
}
