package checkpoint

import (
	"bytes"
	"testing"

	"weipipe/internal/model"
)

// FuzzRead throws arbitrary bytes at the checkpoint reader: it must return
// an error or a valid snapshot, never panic or over-allocate catastrophically.
func FuzzRead(f *testing.F) {
	// seed with a valid checkpoint and a few mutations
	m := model.Build(model.Config{Vocab: 7, Hidden: 4, Layers: 1, Heads: 2, MaxSeq: 4, Seed: 1})
	var buf bytes.Buffer
	if err := Write(&buf, FromModel(m)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("WPCK"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err == nil {
			// whatever parsed must be internally consistent
			if snap.Weights == nil {
				t.Fatal("nil weights on successful read")
			}
		}
	})
}
