package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weipipe/internal/model"
)

func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func digestSnapshot() *Snapshot {
	cfg := model.Config{Vocab: 13, Hidden: 8, Layers: 1, Heads: 2, FFNDim: 16, MaxSeq: 8, Seed: 3}
	s := &Snapshot{
		Config:  cfg,
		Weights: make([]float32, 64),
		Sections: map[string][]float32{
			"adam.m": make([]float32, 64),
			"adam.v": make([]float32, 64),
		},
		Step: 7,
	}
	for i := range s.Weights {
		s.Weights[i] = float32(i)*0.25 - 3
		s.Sections["adam.m"][i] = float32(i) * 1e-3
		s.Sections["adam.v"][i] = float32(i) * 1e-6
	}
	return s
}

func TestDigestRoundTrip(t *testing.T) {
	s := digestSnapshot()
	b, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// The digest section is internal: stripped on read, never surfaced.
	if _, ok := got.Sections[DigestSection]; ok {
		t.Fatal("digest section leaked into the snapshot")
	}
	if len(got.Sections) != len(s.Sections) {
		t.Fatalf("section count %d, want %d", len(got.Sections), len(s.Sections))
	}
}

// TestDigestLocalizesCorruption flips one float of one section in the
// serialized bytes, patches the global file CRC so only the per-section
// digest can catch it (the in-memory-corruption scenario: a flip before
// Save produces a file whose global CRC is honest about corrupt data), and
// asserts the error names the corrupted section.
func TestDigestLocalizesCorruption(t *testing.T) {
	s := digestSnapshot()
	base, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []string{"weights", "adam.m", "adam.v"} {
		b := append([]byte(nil), base...)
		// Find the section's data by locating its name marker, then skip
		// name + elem count.
		idx := bytes.Index(b, append([]byte(sec), 64, 0, 0, 0, 0, 0, 0, 0))
		if sec == "weights" {
			idx = bytes.Index(b, append([]byte(sec), 64, 0, 0, 0, 0, 0, 0, 0))
		}
		if idx < 0 {
			t.Fatalf("section %q not found in serialized form", sec)
		}
		off := idx + len(sec) + 8 + 12 // third element of the section
		b[off] ^= 0x40
		// Re-stamp the global CRC over the corrupted payload.
		payload := b[:len(b)-4]
		binary.LittleEndian.PutUint32(b[len(b)-4:], crcOf(payload))
		_, err := Unmarshal(b)
		if err == nil {
			t.Fatalf("corrupted %q accepted", sec)
		}
		if !strings.Contains(err.Error(), sec) || !strings.Contains(err.Error(), "digest") {
			t.Fatalf("corrupted %q: error does not localize: %v", sec, err)
		}
	}
}

// crcOf mirrors the file format's trailing checksum.
func crcOf(b []byte) uint32 {
	return crc32IEEE(b)
}

func TestDigestBackCompat(t *testing.T) {
	// A pre-digest file: serialize, then strip the digest section and
	// rewrite the section count and CRC. Read must accept it.
	s := digestSnapshot()
	b, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(b, []byte(DigestSection))
	if idx < 0 {
		t.Fatal("digest section missing from fresh file")
	}
	nameLenOff := idx - 8
	stripped := append([]byte(nil), b[:nameLenOff]...)
	// Walk over the digest section: name + count + data, then keep any
	// remaining bytes before the CRC (there are none; digest is last).
	dataElems := int(binary.LittleEndian.Uint64(b[idx+len(DigestSection) : idx+len(DigestSection)+8]))
	end := idx + len(DigestSection) + 8 + 4*dataElems
	stripped = append(stripped, b[end:len(b)-4]...)
	// Patch the section count (first int64 after magic + 9 config fields).
	cntOff := 4 + 9*8
	cnt := binary.LittleEndian.Uint64(stripped[cntOff:])
	binary.LittleEndian.PutUint64(stripped[cntOff:], cnt-1)
	full := append(stripped, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(full[len(full)-4:], crcOf(full[:len(full)-4]))

	got, err := Unmarshal(full)
	if err != nil {
		t.Fatalf("pre-digest file rejected: %v", err)
	}
	if got.Step != s.Step || len(got.Weights) != len(s.Weights) {
		t.Fatal("pre-digest file read incorrectly")
	}
}

func TestDigestResaveStable(t *testing.T) {
	// Load → Save must not accumulate digest sections.
	s := digestSnapshot()
	b1, _ := Marshal(s)
	s2, err := Unmarshal(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := Marshal(s2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("marshal→unmarshal→marshal is not a fixed point")
	}
}

func TestVerifyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	s := digestSnapshot()
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	secs, digested, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !digested {
		t.Fatal("fresh file reported digest-less")
	}
	want := []string{"weights", "adam.m", "adam.v"}
	if len(secs) != len(want) {
		t.Fatalf("sections %v", secs)
	}

	// Corrupt one byte on disk → Verify must fail (global CRC catches it).
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0x10
	bad := filepath.Join(dir, "bad.ckpt")
	os.WriteFile(bad, raw, 0o644)
	if _, _, err := Verify(bad); err == nil {
		t.Fatal("corrupt file verified")
	}
}

func TestSectionCRCMatchesBytes(t *testing.T) {
	data := []float32{0, 1, -2.5, float32(math.Inf(1)), 3e-9}
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if sectionCRC(data) != crc32IEEE(raw) {
		t.Fatal("sectionCRC disagrees with byte-stream CRC")
	}
}
