// weipipe-train runs real distributed training of a Llama-style model on
// CPU: the ranks are goroutines communicating through the in-process
// message fabric (or a TCP mesh on loopback with -tcp), exactly the code
// paths a multi-machine deployment would use. It supports the full training
// loop a production run needs: warm-up + cosine learning-rate schedule,
// global-norm gradient clipping, checkpoint/resume, hybrid WeiPipe×DP
// rings, fault-tolerant execution with periodic coordinated checkpoints and
// restart-on-failure, and a sampled generation at the end.
//
// Examples:
//
//	weipipe-train -strategy weipipe-interleave -p 4 -iters 20
//	weipipe-train -p 4 -wp 2 -iters 10                     # 2 replicas × 2-worker rings
//	weipipe-train -iters 10 -checkpoint /tmp/m.wpck        # save when done
//	weipipe-train -resume /tmp/m.wpck -iters 5             # continue from a snapshot
//	weipipe-train -tcp -ckpt-every 5 -max-restarts 3 \
//	    -checkpoint /tmp/m.wpck                            # survive rank failures
//	weipipe-train -tcp -chaos 0.05 -stats                  # chaos-test the transport
//	weipipe-train -p 4 -strategy wzb2 -overlap \
//	    -trace out.json -metrics                           # runtime tracing + rollup
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"weipipe"
	"weipipe/internal/comm"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// runConfig carries every CLI decision into run().
type runConfig struct {
	strategy    weipipe.Strategy
	p, wp       int
	cfg         weipipe.Config
	opts        weipipe.Options
	sched       optim.Schedule
	iters, n, g int
	tcp         bool
	bf16        bool
	dialTimeout time.Duration
	chaos       float64
	chaosSeed   uint64
	ckptPath    string
	ckptEvery   int
	ckptKeep    int
	maxRestarts int
	elastic     weipipe.ElasticPolicy
	spares      int
	watchdog    bool
	stats       bool
	sample      int
	resumeW     []float32
	tracePath   string
	metrics     bool
	traceSet    *trace.Set
}

func main() {
	strategy := flag.String("strategy", "weipipe-interleave", "training strategy")
	backend := flag.String("backend", "", "tensor kernel backend: scalar (default; bit-exact reference), avx2 (SIMD, reassociated NT reductions), auto (best available)")
	p := flag.Int("p", 2, "workers")
	wp := flag.Int("wp", 0, "hybrid mode: WeiPipe ring size (0 = plain strategy; implies weipipe-interleave rings × data parallel)")
	vocab := flag.Int("vocab", 256, "vocabulary size")
	hidden := flag.Int("hidden", 64, "hidden size")
	layers := flag.Int("layers", 4, "transformer layers")
	heads := flag.Int("heads", 4, "attention heads")
	seq := flag.Int("seq", 64, "sequence length")
	g := flag.Int("g", 2, "microbatch size")
	n := flag.Int("n", 4, "microbatches per iteration")
	iters := flag.Int("iters", 10, "training iterations")
	lr := flag.Float64("lr", 1e-3, "peak learning rate")
	warmup := flag.Int("warmup", 0, "LR warm-up iterations (0 disables the schedule)")
	clip := flag.Float64("clip", 0, "global gradient-norm clip (0 disables)")
	seed := flag.Uint64("seed", 42, "model and data seed")
	recompute := flag.Bool("recompute", false, "activation checkpointing")
	mixed := flag.Bool("mixed", false, "fp16/bf16 wire format")
	overlap := flag.Bool("overlap", false, "asynchronous double-buffered belt engine: background prefetch and store-and-forward relay of weight chunks, zero-copy gradient retirement (bit-identical to blocking mode)")
	bf16 := flag.Bool("bf16", false, "bf16 wire codec for weight and weight-gradient belt payloads (halves belt bytes)")
	groupSize := flag.Int("group-size", 0, "ranks per topology group for the grouped belt (-strategy wzb2g): weight chunks cross a group boundary once per iteration and recirculate on the intra-group fabric (0 = topology-friendly default; sizes that do not divide -p fall back to the flat belt); also arms the per-link-tier byte meters shown by -stats for any strategy")
	p2pMode := flag.String("p2p-mode", "", "per-link transport packaging: frame (default baseline protocol), batched (coalesce same-tick sends into one CRC'd burst envelope per link write), duplex (dedicated ack/heartbeat lane per link, no head-of-line blocking), auto (pick per link from topology tier and measured ack RTT); every mode is bit-identical to frame")
	tcp := flag.Bool("tcp", false, "use a TCP mesh on loopback instead of in-process channels")
	dialTimeout := flag.Duration("dial-timeout", 15*time.Second, "TCP mesh bring-up deadline (with -tcp)")
	chaos := flag.Float64("chaos", 0, "per-frame fault probability for TCP chaos injection: drop, duplicate, reorder (and corrupt at half rate); masked by the reliability layer")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for deterministic chaos injection")
	ckptEvery := flag.Int("ckpt-every", 0, "take a coordinated full-state checkpoint every n iterations (enables failure recovery)")
	ckptKeep := flag.Int("ckpt-keep", 1, "rotate on-disk checkpoints, retaining the last k")
	maxRestarts := flag.Int("max-restarts", 0, "restart from the last checkpoint up to n times after a rank failure")
	elastic := flag.String("elastic", "none", "elastic repair policy on rank failure: none (checkpoint restart), shrink (re-shard across survivors from buddy replicas), spare (admit standby spares)")
	spares := flag.Int("spares", 0, "standby rank budget for -elastic spare")
	watchdog := flag.Bool("watchdog", false, "run the straggler watchdog (reports ranks stalled past 8× the median iteration; with elastic repair on, declares them dead)")
	guard := flag.Bool("guard", false, "skip optimizer steps whose global gradient is non-finite (NaN/Inf)")
	integrity := flag.Bool("integrity", false, "end-to-end silent-data-corruption defense: CRC-sealed belt chunks verified at every consumption point plus resident weight/moment guards; detections become typed failures the recovery machinery repairs")
	abft := flag.Bool("abft", false, "algorithm-based fault tolerance on the tensor kernels: every matmul verified against row/column checksums (O(n²) overhead per matmul)")
	spikeWindow := flag.Int("spike-window", 0, "arm the windowed grad-norm spike detector over the last n accepted norms (0 disables)")
	spikeSkip := flag.Bool("spike-skip", false, "skip optimizer steps the spike detector flags (with -spike-window)")
	bitflipChaos := flag.Int("bitflip-chaos", 0, "inject n seeded bit flips spread across the fault sites (weights, optimizer moments, belt buffers; kernel outputs with -abft) — the SDC chaos tier; combine with -integrity and recovery flags")
	bitflipSeed := flag.Uint64("bitflip-seed", 1, "seed for the deterministic bit-flip schedule")
	verifyCkpt := flag.String("verify-ckpt", "", "verify checkpoint integrity (whole-file CRC + per-section digests) for this file or every *.wpck in this directory, then exit")
	stats := flag.Bool("stats", false, "print per-rank communication and fault statistics at the end")
	ckpt := flag.String("checkpoint", "", "checkpoint path: periodic saves in recovery mode, final snapshot always")
	resume := flag.String("resume", "", "resume from this checkpoint (overrides the model flags)")
	sample := flag.Int("sample", 0, "sample this many tokens from the trained model at the end")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this path (per-rank F/B/W, optimizer, stall, belt-lane and transport spans; open in ui.perfetto.dev or feed to weipipe-trace -compare)")
	metrics := flag.Bool("metrics", false, "print the per-iteration timing rollup (step/F/B/W/opt/exposed means, stall counts, arena high-water marks) at the end")
	flag.Parse()

	if *verifyCkpt != "" {
		if err := runVerifyCkpt(*verifyCkpt); err != nil {
			fatal(err)
		}
		return
	}

	if *backend != "" {
		if err := tensor.SetBackend(*backend); err != nil {
			fatal(err)
		}
	}
	if name := tensor.BackendName(); name != "scalar" {
		mode := "bit-exact"
		if !tensor.BackendExact() {
			mode = "tolerance mode: NT matmul and DotF32 reductions reassociated"
		}
		fmt.Printf("kernel backend: %s (%s; deterministic, strategies stay mutually bit-identical)\n", name, mode)
	}

	cfg := weipipe.Config{
		Vocab: *vocab, Hidden: *hidden, Layers: *layers, Heads: *heads,
		MaxSeq: *seq, Seed: *seed,
	}
	var resumeWeights []float32
	if *resume != "" {
		snap, err := weipipe.LoadCheckpoint(*resume)
		if err != nil {
			fatal(err)
		}
		cfg = snap.Config
		resumeWeights = snap.Weights
		fmt.Printf("resumed config from %s (step %d)\n", *resume, snap.Step)
	}
	opts := weipipe.DefaultOptions(*lr)
	opts.Recompute = *recompute
	opts.MixedPrecision = *mixed
	opts.Overlap = *overlap
	opts.BF16Wire = *bf16
	opts.GroupSize = *groupSize
	opts.ClipNorm = *clip
	opts.GuardNonFinite = *guard
	opts.Integrity = *integrity
	opts.SpikeWindow = *spikeWindow
	opts.SpikeSkip = *spikeSkip
	if pm, err := weipipe.ParseP2PMode(*p2pMode); err != nil {
		fatal(err)
	} else {
		opts.P2PMode = pm
	}
	if *abft {
		weipipe.EnableABFT()
		fmt.Println("ABFT armed: matmul outputs verified against row/column checksums")
	}
	if *bitflipChaos > 0 {
		sites := []weipipe.FlipSite{
			weipipe.FlipWeights, weipipe.FlipMomentM, weipipe.FlipMomentV,
			weipipe.FlipBeltWeight, weipipe.FlipBeltGrad,
		}
		if *abft {
			sites = append(sites, weipipe.FlipKernel)
		}
		events := weipipe.GenBitFlips(*bitflipSeed, *p, *iters, *bitflipChaos, sites)
		inj := weipipe.NewBitFlipInjector(events)
		opts.BitFlip = inj
		if *abft {
			tensor.SetABFTFault(inj.KernelHook())
		}
		fmt.Printf("bit-flip chaos armed: %d scheduled flips (seed %d)\n", len(events), *bitflipSeed)
	}

	var policy weipipe.ElasticPolicy
	switch *elastic {
	case "none":
		policy = weipipe.ElasticNone
	case "shrink":
		policy = weipipe.ElasticShrink
	case "spare":
		policy = weipipe.ElasticSpare
	default:
		fatal(fmt.Errorf("unknown -elastic policy %q (none, shrink, spare)", *elastic))
	}

	var sched optim.Schedule = optim.ConstantLR(*lr)
	if *warmup > 0 {
		sched = optim.WarmupCosine{Base: *lr, Floor: *lr / 10, Warmup: *warmup, Total: *iters}
	}

	rc := runConfig{
		strategy: weipipe.Strategy(*strategy), p: *p, wp: *wp,
		cfg: cfg, opts: opts, sched: sched,
		iters: *iters, n: *n, g: *g,
		tcp: *tcp, bf16: *bf16, dialTimeout: *dialTimeout,
		chaos: *chaos, chaosSeed: *chaosSeed,
		ckptPath: *ckpt, ckptEvery: *ckptEvery, ckptKeep: *ckptKeep,
		maxRestarts: *maxRestarts, elastic: policy, spares: *spares,
		watchdog: *watchdog,
		stats:    *stats, sample: *sample, resumeW: resumeWeights,
		tracePath: *tracePath, metrics: *metrics,
	}
	if rc.chaos > 0 && !rc.tcp {
		fatal(fmt.Errorf("-chaos injects faults below the TCP reliability layer; it requires -tcp"))
	}
	if rc.tracePath != "" || rc.metrics {
		rc.traceSet = trace.NewSet(rc.p, trace.DefaultCapacity)
		rc.opts.Trace = rc.traceSet
	}
	if err := run(rc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "weipipe-train:", err)
	os.Exit(1)
}

// p2pMeta renders the P2P mode for trace metadata: the baseline mode maps
// to "" so frame-mode traces are byte-identical to pre-mode ones.
func p2pMeta(m weipipe.P2PMode) string {
	if m == weipipe.P2PFrame {
		return ""
	}
	return m.String()
}

func run(rc runConfig) error {
	resilient := rc.ckptEvery > 0 || rc.maxRestarts > 0 || rc.elastic != weipipe.ElasticNone || rc.watchdog
	if resilient {
		if rc.wp > 0 {
			return fmt.Errorf("recovery mode (-ckpt-every/-max-restarts) does not support hybrid -wp rings yet")
		}
		if rc.traceSet != nil {
			return fmt.Errorf("-trace/-metrics are not supported in recovery mode yet (the restart loop rebuilds trainers mid-trace)")
		}
		if rc.resumeW != nil {
			return fmt.Errorf("recovery mode resumes full state from -checkpoint automatically; -resume is for weight-only snapshots")
		}
		return runResilient(rc)
	}
	return runPlain(rc)
}

// runResilient drives training through the fault-tolerant runner: periodic
// coordinated checkpoints, clean abort on rank failure, restart from the
// last checkpoint. An existing full-state file at -checkpoint seeds the run.
func runResilient(rc runConfig) error {
	fmt.Printf("training %s on %d workers (fault-tolerant: checkpoint every %d, up to %d restarts, elastic %s): %d iterations × %d microbatches of %d×%d tokens\n",
		rc.strategy, rc.p, rc.ckptEvery, rc.maxRestarts, rc.elastic, rc.iters, rc.n, rc.g, rc.cfg.MaxSeq)
	ropts := weipipe.ResilientOptions{
		CheckpointEvery: rc.ckptEvery,
		CheckpointPath:  rc.ckptPath,
		KeepCheckpoints: rc.ckptKeep,
		MaxRestarts:     rc.maxRestarts,
		Elastic:         rc.elastic,
		Spares:          rc.spares,
		LR:              rc.sched.LR,
		OnIteration: func(iter int, loss float64) {
			fmt.Printf("iter %3d  lr %.2e  loss %.4f\n", iter, rc.sched.LR(iter), loss)
		},
		OnRepair: func(ev weipipe.RepairEvent) {
			fmt.Printf("elastic repair (%s): ranks %v died, world %d → %d, resuming at iteration %d from buddy replicas\n",
				ev.Policy, ev.Dead, ev.OldSize, ev.NewSize, ev.Iteration)
		},
	}
	if rc.watchdog {
		ropts.Watchdog = &weipipe.WatchdogConfig{
			DeclareDead: rc.elastic != weipipe.ElasticNone,
			OnStraggler: func(r weipipe.StragglerReport) {
				fmt.Printf("straggler: rank %d stalled %v at iteration %d microbatch %d phase %c (declared dead: %v)\n",
					r.Rank, r.Stall, r.Iteration, r.Microbatch, r.Phase, r.Declared)
			},
		}
	}
	res, err := weipipe.RunResilient(rc.strategy, rc.p, rc.cfg, rc.opts, rc.iters,
		func(iter int) []weipipe.Batch {
			return weipipe.Microbatches(rc.cfg.Seed+uint64(iter), rc.n, rc.g, rc.cfg.Vocab, rc.cfg.MaxSeq)
		},
		func(attempt, size int) ([]weipipe.Transport, error) {
			if attempt > 0 {
				fmt.Printf("rank failure: rebuilding cluster (attempt %d, %d ranks)\n", attempt, size)
			}
			return buildTransports(rc, size)
		},
		ropts)
	if err != nil {
		return err
	}
	if rc.stats {
		printStats(res.Comm)
		fmt.Printf("guard-skipped optimizer steps: %d\n", res.SkippedSteps)
		fmt.Printf("spike-flagged steps: %d\n", res.SpikeSteps)
		fmt.Printf("elastic repairs: %d\n", len(res.Repairs))
	}
	return finish(rc, res.Weights)
}

// runPlain is the direct lock-step loop (no recovery machinery), including
// hybrid WeiPipe×DP and weight-only resume.
func runPlain(rc runConfig) error {
	transports, err := buildTransports(rc, rc.p)
	if err != nil {
		return err
	}

	trainers := make([]weipipe.Trainer, rc.p)
	{
		var wg sync.WaitGroup
		errs := make([]error, rc.p)
		for r := 0; r < rc.p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if rc.wp > 0 {
					trainers[r], errs[r] = weipipe.NewHybridTrainer(transports[r], rc.cfg, rc.opts, rc.wp)
				} else {
					trainers[r], errs[r] = weipipe.NewTrainer(rc.strategy, transports[r], rc.cfg, rc.opts)
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	if rc.resumeW != nil {
		// load the snapshot into every rank's replica buffer; owners pick up
		// their chunks from it on the next iteration's injection.
		for _, tr := range trainers {
			weipipe.LoadWeights(tr.Model(), rc.resumeW)
			if w, ok := tr.(*pipeline.WeiPipe); ok {
				w.ReloadMasterFromModel()
			}
		}
	}

	mode := string(rc.strategy)
	if rc.wp > 0 {
		mode = fmt.Sprintf("hybrid weipipe×dp (%d rings of %d)", rc.p/rc.wp, rc.wp)
	}
	fmt.Printf("training %s on %d workers: %d iterations × %d microbatches of %d×%d tokens\n",
		mode, rc.p, rc.iters, rc.n, rc.g, rc.cfg.MaxSeq)
	for it := 0; it < rc.iters; it++ {
		for _, tr := range trainers {
			if ls, ok := tr.(pipeline.LRSetter); ok {
				ls.SetLR(rc.sched.LR(it))
			}
		}
		batches := weipipe.Microbatches(rc.cfg.Seed+uint64(it), rc.n, rc.g, rc.cfg.Vocab, rc.cfg.MaxSeq)
		losses := make([]float64, rc.p)
		errs := make([]error, rc.p)
		var wg sync.WaitGroup
		for r := 0; r < rc.p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rt := rc.traceSet.Rank(r)
				span := rt.Begin()
				losses[r], errs[r] = trainers[r].TrainIteration(batches)
				rt.End(span, trace.CodeStep, int64(it), 0)
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		fmt.Printf("iter %3d  lr %.2e  loss %.4f\n", it, rc.sched.LR(it), losses[0])
	}

	if rc.stats {
		var all []*weipipe.CommStats
		for _, t := range transports {
			if m, ok := t.(interface{ CommStats() *weipipe.CommStats }); ok {
				all = append(all, m.CommStats())
			}
		}
		printStats(all)
	}
	if rc.traceSet != nil {
		if err := writeTraceOutputs(rc, trainers, transports); err != nil {
			return err
		}
	}
	for _, t := range transports {
		t.Close()
	}
	return finish(rc, assemble(trainers, rc.p, rc.wp))
}

// writeTraceOutputs emits the tracer's two products after training: the
// -metrics per-iteration rollup (with arena and in-flight high-water marks)
// and the -trace Chrome JSON with the run's metadata embedded so
// weipipe-trace -compare can rebuild the matching simulated schedule.
func writeTraceOutputs(rc runConfig, trainers []weipipe.Trainer, transports []weipipe.Transport) error {
	if rc.metrics {
		sum := trace.Summarize(trace.PerIteration(rc.traceSet.Events()))
		fmt.Print(sum)
		for r, tr := range trainers {
			if am, ok := tr.(pipeline.ArenaMeter); ok {
				fmt.Printf("  rank %d arena high-water: %d slots\n", r, am.ArenaHighWater())
			}
		}
		for r, t := range transports {
			if m, ok := t.(interface{ CommStats() *weipipe.CommStats }); ok {
				fmt.Printf("  rank %d max in-flight: %d bytes\n", r, m.CommStats().MaxInFlightBytes())
			}
		}
		if d := rc.traceSet.Dropped(); d > 0 {
			fmt.Printf("  (event ring wrapped: %d oldest events dropped)\n", d)
		}
	}
	if rc.tracePath != "" {
		blob, err := rc.traceSet.ChromeTrace(&trace.RunMeta{
			Strategy: string(rc.strategy), P: rc.p, N: rc.n,
			Hidden: rc.cfg.Hidden, Layers: rc.cfg.Layers, Seq: rc.cfg.MaxSeq,
			Batch: rc.g, Heads: rc.cfg.Heads, Vocab: rc.cfg.Vocab,
			Iters: rc.iters, Overlap: rc.opts.Overlap,
			P2PMode: p2pMeta(rc.opts.P2PMode),
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(rc.tracePath, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev, or: weipipe-trace -compare %s)\n",
			rc.tracePath, rc.tracePath)
	}
	return nil
}

// finish writes the final checkpoint and runs the optional sampling pass.
func finish(rc runConfig, weights []float32) error {
	final := weipipe.BuildModel(rc.cfg)
	weipipe.LoadWeights(final, weights)
	if rc.ckptPath != "" {
		snap := weipipe.SnapshotModel(final)
		snap.Step = int64(rc.iters)
		if err := weipipe.SaveCheckpoint(rc.ckptPath, snap); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", rc.ckptPath)
	}
	if rc.sample > 0 {
		prompt := weipipe.Microbatches(rc.cfg.Seed, 1, 1, rc.cfg.Vocab, rc.cfg.MaxSeq)[0].Tokens[0][:4]
		out, err := weipipe.Generate(final, prompt, rc.sample, weipipe.GenOptions{Temperature: 0.8, TopK: 8, Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("sample: prompt %v → %v\n", prompt, out[len(prompt):])
	}
	return nil
}

// printStats dumps each rank's communication meter, including the per-peer
// fault counters (retransmits, timeouts, reconnects, heartbeat misses,
// CRC-rejected and duplicate frames).
func printStats(all []*weipipe.CommStats) {
	fmt.Println("communication statistics:")
	var checks, fails int64
	total := comm.NewStats()
	for r, s := range all {
		fmt.Printf("  rank %d: %s\n", r, s)
		c, f := s.TotalIntegrityChecks()
		checks += c
		fails += f
		total.Add(s)
	}
	if checks > 0 {
		fmt.Printf("  integrity: %d checks, %d failures detected\n", checks, fails)
	}
	if m := total.GroupSize(); m > 1 {
		intraB, intraM := total.IntraGroupTraffic()
		interB, interM := total.InterGroupTraffic()
		fmt.Printf("  link tiers (groups of %d): intra-group %d bytes / %d msgs, inter-group %d bytes / %d msgs\n",
			m, intraB, intraM, interB, interM)
	}
}

// runVerifyCkpt implements -verify-ckpt: verify one checkpoint file, or
// every *.wpck under a directory, against the whole-file CRC and the
// per-section digests. Any failure exits non-zero after scanning the rest.
func runVerifyCkpt(target string) error {
	info, err := os.Stat(target)
	if err != nil {
		return err
	}
	paths := []string{target}
	if info.IsDir() {
		paths, err = filepath.Glob(filepath.Join(target, "*.wpck"))
		if err != nil {
			return err
		}
		if len(paths) == 0 {
			return fmt.Errorf("no *.wpck files under %s", target)
		}
		sort.Strings(paths)
	}
	bad := 0
	for _, p := range paths {
		sections, digested, err := weipipe.VerifyCheckpoint(p)
		switch {
		case err != nil:
			bad++
			fmt.Printf("%s: FAIL: %v\n", p, err)
		case digested:
			fmt.Printf("%s: ok (%d sections, per-section digests verified)\n", p, len(sections))
		default:
			fmt.Printf("%s: ok (%d sections; pre-digest format, whole-file CRC only)\n", p, len(sections))
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d checkpoints failed verification", bad, len(paths))
	}
	fmt.Printf("%d checkpoints verified\n", len(paths))
	return nil
}

func buildTransports(rc runConfig, size int) ([]weipipe.Transport, error) {
	var codec weipipe.CodecFunc
	if rc.bf16 {
		codec = weipipe.BeltBF16
	}
	if !rc.tcp {
		cl := comm.NewClusterCodec(size, codec)
		cl.AttachTrace(rc.traceSet)
		if rc.opts.P2PMode != weipipe.P2PFrame {
			if err := cl.SetP2PMode(rc.opts.P2PMode, rc.opts.GroupSize); err != nil {
				return nil, err
			}
		}
		return cl.Transports(), nil
	}
	addrs, err := weipipe.LoopbackAddrs(size)
	if err != nil {
		return nil, err
	}
	topts := weipipe.TCPOptions{
		DialTimeout: rc.dialTimeout, Codec: codec,
		P2PMode: rc.opts.P2PMode, GroupSize: rc.opts.GroupSize,
	}
	if rc.chaos > 0 {
		topts.Chaos = &weipipe.ChaosConfig{
			Seed:      rc.chaosSeed,
			Drop:      rc.chaos,
			Dup:       rc.chaos,
			Reorder:   rc.chaos,
			Corrupt:   rc.chaos / 2,
			DelayProb: rc.chaos,
			MaxDelay:  time.Millisecond,
		}
	}
	transports := make([]weipipe.Transport, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			to := topts
			to.Trace = rc.traceSet.Rank(r)
			transports[r], errs[r] = weipipe.DialTCPOpts(r, addrs, to)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, t := range transports {
				if t != nil {
					t.Close()
				}
			}
			return nil, err
		}
	}
	fmt.Printf("TCP mesh up on %v\n", addrs)
	return transports, nil
}

// assemble gathers the authoritative post-training weights: for hybrid
// runs, replica 0's ring covers the model; otherwise all trainers do.
func assemble(trainers []weipipe.Trainer, p, wp int) []float32 {
	if wp > 0 {
		return pipeline.AssembleWeights(asPipeline(trainers[:wp]))
	}
	return pipeline.AssembleWeights(asPipeline(trainers))
}

func asPipeline(ts []weipipe.Trainer) []pipeline.Trainer {
	out := make([]pipeline.Trainer, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}
