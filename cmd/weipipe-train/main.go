// weipipe-train runs real distributed training of a Llama-style model on
// CPU: the ranks are goroutines communicating through the in-process
// message fabric (or a TCP mesh on loopback with -tcp), exactly the code
// paths a multi-machine deployment would use. It supports the full training
// loop a production run needs: warm-up + cosine learning-rate schedule,
// global-norm gradient clipping, checkpoint/resume, hybrid WeiPipe×DP
// rings, and a sampled generation at the end.
//
// Examples:
//
//	weipipe-train -strategy weipipe-interleave -p 4 -iters 20
//	weipipe-train -p 4 -wp 2 -iters 10                     # 2 replicas × 2-worker rings
//	weipipe-train -iters 10 -checkpoint /tmp/m.wpck        # save when done
//	weipipe-train -resume /tmp/m.wpck -iters 5             # continue from a snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"weipipe"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
)

func main() {
	strategy := flag.String("strategy", "weipipe-interleave", "training strategy")
	p := flag.Int("p", 2, "workers")
	wp := flag.Int("wp", 0, "hybrid mode: WeiPipe ring size (0 = plain strategy; implies weipipe-interleave rings × data parallel)")
	vocab := flag.Int("vocab", 256, "vocabulary size")
	hidden := flag.Int("hidden", 64, "hidden size")
	layers := flag.Int("layers", 4, "transformer layers")
	heads := flag.Int("heads", 4, "attention heads")
	seq := flag.Int("seq", 64, "sequence length")
	g := flag.Int("g", 2, "microbatch size")
	n := flag.Int("n", 4, "microbatches per iteration")
	iters := flag.Int("iters", 10, "training iterations")
	lr := flag.Float64("lr", 1e-3, "peak learning rate")
	warmup := flag.Int("warmup", 0, "LR warm-up iterations (0 disables the schedule)")
	clip := flag.Float64("clip", 0, "global gradient-norm clip (0 disables)")
	seed := flag.Uint64("seed", 42, "model and data seed")
	recompute := flag.Bool("recompute", false, "activation checkpointing")
	mixed := flag.Bool("mixed", false, "fp16/bf16 wire format")
	tcp := flag.Bool("tcp", false, "use a TCP mesh on loopback instead of in-process channels")
	ckpt := flag.String("checkpoint", "", "write a checkpoint here when training finishes")
	resume := flag.String("resume", "", "resume from this checkpoint (overrides the model flags)")
	sample := flag.Int("sample", 0, "sample this many tokens from the trained model at the end")
	flag.Parse()

	cfg := weipipe.Config{
		Vocab: *vocab, Hidden: *hidden, Layers: *layers, Heads: *heads,
		MaxSeq: *seq, Seed: *seed,
	}
	var resumeWeights []float32
	if *resume != "" {
		snap, err := weipipe.LoadCheckpoint(*resume)
		if err != nil {
			fatal(err)
		}
		cfg = snap.Config
		resumeWeights = snap.Weights
		fmt.Printf("resumed config from %s (step %d)\n", *resume, snap.Step)
	}
	opts := weipipe.DefaultOptions(*lr)
	opts.Recompute = *recompute
	opts.MixedPrecision = *mixed
	opts.ClipNorm = *clip

	var sched optim.Schedule = optim.ConstantLR(*lr)
	if *warmup > 0 {
		sched = optim.WarmupCosine{Base: *lr, Floor: *lr / 10, Warmup: *warmup, Total: *iters}
	}

	if err := run(weipipe.Strategy(*strategy), *p, *wp, cfg, opts, sched,
		*iters, *n, *g, *tcp, *ckpt, *sample, resumeWeights); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "weipipe-train:", err)
	os.Exit(1)
}

func run(s weipipe.Strategy, p, wp int, cfg weipipe.Config, opts weipipe.Options,
	sched optim.Schedule, iters, n, g int, tcp bool, ckptPath string, sample int,
	resumeWeights []float32) error {

	transports, err := buildTransports(p, tcp)
	if err != nil {
		return err
	}

	trainers := make([]weipipe.Trainer, p)
	{
		var wg sync.WaitGroup
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if wp > 0 {
					trainers[r], errs[r] = weipipe.NewHybridTrainer(transports[r], cfg, opts, wp)
				} else {
					trainers[r], errs[r] = weipipe.NewTrainer(s, transports[r], cfg, opts)
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	if resumeWeights != nil {
		// load the snapshot into every rank's replica buffer; owners pick up
		// their chunks from it on the next iteration's injection.
		for _, tr := range trainers {
			weipipe.LoadWeights(tr.Model(), resumeWeights)
			if w, ok := tr.(*pipeline.WeiPipe); ok {
				w.ReloadMasterFromModel()
			}
		}
	}

	mode := string(s)
	if wp > 0 {
		mode = fmt.Sprintf("hybrid weipipe×dp (%d rings of %d)", p/wp, wp)
	}
	fmt.Printf("training %s on %d workers: %d iterations × %d microbatches of %d×%d tokens\n",
		mode, p, iters, n, g, cfg.MaxSeq)
	for it := 0; it < iters; it++ {
		for _, tr := range trainers {
			if ls, ok := tr.(pipeline.LRSetter); ok {
				ls.SetLR(sched.LR(it))
			}
		}
		batches := weipipe.Microbatches(cfg.Seed+uint64(it), n, g, cfg.Vocab, cfg.MaxSeq)
		losses := make([]float64, p)
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				losses[r], errs[r] = trainers[r].TrainIteration(batches)
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		fmt.Printf("iter %3d  lr %.2e  loss %.4f\n", it, sched.LR(it), losses[0])
	}

	final := weipipe.BuildModel(cfg)
	weipipe.LoadWeights(final, assemble(trainers, p, wp))
	if ckptPath != "" {
		snap := weipipe.SnapshotModel(final)
		snap.Step = int64(iters)
		if err := weipipe.SaveCheckpoint(ckptPath, snap); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", ckptPath)
	}
	if sample > 0 {
		prompt := weipipe.Microbatches(cfg.Seed, 1, 1, cfg.Vocab, cfg.MaxSeq)[0].Tokens[0][:4]
		out, err := weipipe.Generate(final, prompt, sample, weipipe.GenOptions{Temperature: 0.8, TopK: 8, Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("sample: prompt %v → %v\n", prompt, out[len(prompt):])
	}
	return nil
}

func buildTransports(p int, tcp bool) ([]weipipe.Transport, error) {
	if !tcp {
		return weipipe.NewInprocCluster(p), nil
	}
	addrs, err := weipipe.LoopbackAddrs(p)
	if err != nil {
		return nil, err
	}
	transports := make([]weipipe.Transport, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			transports[r], errs[r] = weipipe.DialTCP(r, addrs)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	fmt.Printf("TCP mesh up on %v\n", addrs)
	return transports, nil
}

// assemble gathers the authoritative post-training weights: for hybrid
// runs, replica 0's ring covers the model; otherwise all trainers do.
func assemble(trainers []weipipe.Trainer, p, wp int) []float32 {
	if wp > 0 {
		return pipeline.AssembleWeights(asPipeline(trainers[:wp]))
	}
	return pipeline.AssembleWeights(asPipeline(trainers))
}

func asPipeline(ts []weipipe.Trainer) []pipeline.Trainer {
	out := make([]pipeline.Trainer, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}
