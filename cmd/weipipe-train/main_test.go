package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"weipipe/internal/trace"
)

// TestMain re-execs the test binary as the real CLI when the marker
// environment variable is set, so smoke tests exercise main() — flag
// parsing included — without a separate `go build`.
func TestMain(m *testing.M) {
	if os.Getenv("WEIPIPE_SMOKE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WEIPIPE_SMOKE_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestSmokeTrainWithTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	out, err := runSelf(t,
		"-p", "2", "-strategy", "wzb2", "-overlap",
		"-iters", "1", "-n", "2", "-g", "1",
		"-hidden", "16", "-layers", "2", "-heads", "2", "-seq", "8", "-vocab", "32",
		"-trace", tracePath, "-metrics")
	if err != nil {
		t.Fatalf("train failed: %v\n%s", err, out)
	}
	for _, want := range []string{"iter   0", "step time", "exposed comm", "trace written to"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, meta, err := trace.ParseChrome(blob)
	if err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if meta == nil || meta.Strategy != "wzb2" || meta.P != 2 {
		t.Fatalf("trace meta = %+v", meta)
	}
	if len(events) == 0 {
		t.Fatal("trace carries no events")
	}
}

func TestSmokeTrainRejectsUnknownStrategy(t *testing.T) {
	out, err := runSelf(t, "-strategy", "bogus", "-p", "2", "-iters", "1")
	if err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
	if !strings.Contains(out, "unknown strategy") {
		t.Fatalf("unexpected error output:\n%s", out)
	}
}

func TestSmokeTrainRejectsChaosWithoutTCP(t *testing.T) {
	out, err := runSelf(t, "-chaos", "0.1")
	if err == nil || !strings.Contains(out, "requires -tcp") {
		t.Fatalf("expected -chaos/-tcp validation error, got err=%v:\n%s", err, out)
	}
}

func TestSmokeTrainRejectsTraceInRecoveryMode(t *testing.T) {
	out, err := runSelf(t, "-metrics", "-ckpt-every", "2")
	if err == nil || !strings.Contains(out, "not supported in recovery mode") {
		t.Fatalf("expected recovery-mode validation error, got err=%v:\n%s", err, out)
	}
}
