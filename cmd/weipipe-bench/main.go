// weipipe-bench regenerates the paper's tables and figures from the
// performance model and prints them with the paper's published numbers side
// by side (model|paper).
//
// Usage:
//
//	weipipe-bench                 # everything
//	weipipe-bench -exp table2     # one experiment
//	weipipe-bench -exp fig1       # a schedule-diagram figure (ASCII)
//	weipipe-bench -list           # list experiment ids
//	weipipe-bench -overlap        # functional A/B: blocking vs overlapped
//	                              # belt engine, written to BENCH_overlap.json
//	weipipe-bench -sweep          # strategy×topology×scale cost-model grid,
//	                              # written to BENCH_sweep.json
//	weipipe-bench -kernel         # functional MatMulNT 256³ scalar-vs-SIMD
//	                              # A/B, written to BENCH_kernel.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"weipipe/internal/bench"
	"weipipe/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, table2, table3, table4, fig1..fig9")
	width := flag.Int("width", 96, "timeline width for fig1..fig4")
	list := flag.Bool("list", false, "list experiment ids and exit")
	backend := flag.String("backend", "", "tensor kernel backend: scalar, avx2, auto (default: scalar)")
	overlap := flag.Bool("overlap", false, "run the functional blocking-vs-overlapped belt benchmark instead of the model tables")
	overlapOut := flag.String("out", "BENCH_overlap.json", "output path for -overlap")
	overlapIters := flag.Int("iters", 3, "timed iterations per rep for -overlap")
	overlapReps := flag.Int("reps", 3, "repetitions (min taken) for -overlap")
	overlapH := flag.Int("H", 0, "hidden size override for -overlap (0 = default)")
	overlapN := flag.Int("N", 0, "microbatch count override for -overlap (0 = default)")
	requireBI := flag.Bool("require-bit-identical", false, "with -overlap: exit nonzero unless the report's bit_identical verdict is true (the CI regression guard); alone: check an existing -out report")
	sweep := flag.Bool("sweep", false, "run the strategy×topology×scale cost-model sweep")
	sweepOut := flag.String("sweep-out", "BENCH_sweep.json", "output path for -sweep")
	grouped := flag.Bool("grouped", false, "run the grouped-belt traffic benchmark (simulated grid + functional p=16 A/B)")
	groupedOut := flag.String("grouped-out", "BENCH_grouped.json", "output path for -grouped")
	requireGroupedWin := flag.Bool("require-grouped-win", false, "exit nonzero unless the -grouped-out report shows bit-identity and an inter-group byte reduction, measured and simulated (the CI grouped guard); checks an existing report when -grouped is absent")
	p2p := flag.Bool("p2p", false, "run the P2P mode benchmark (simulated frame/batched/duplex/auto link-model grid + functional mode A/B vs the frame baseline)")
	p2pOut := flag.String("p2p-out", "BENCH_p2p.json", "output path for -p2p")
	requireP2PWin := flag.Bool("require-p2p-win", false, "exit nonzero unless the -p2p-out report shows every mode bit-identical with unchanged belt traffic and a batched link-send reduction on the high-latency profiles (the CI P2P guard); checks an existing report when -p2p is absent")
	kernel := flag.Bool("kernel", false, "run the functional MatMulNT kernel A/B (scalar vs best backend)")
	kernelOut := flag.String("kernel-out", "BENCH_kernel.json", "output path for -kernel")
	kernelReps := flag.Int("kernel-reps", 20, "repetitions (min taken) for -kernel")
	requireSpeedup := flag.Float64("require-kernel-speedup", 0, "exit nonzero unless the -kernel-out report's SIMD speedup reaches this factor (the CI kernel guard); 0 disables")
	flag.Parse()

	if *backend != "" {
		if err := tensor.SetBackend(*backend); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
	}
	if *sweep {
		if err := bench.WriteSweep(*sweepOut); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *grouped {
		if err := bench.WriteGroupedBench(*groupedOut); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
	}
	if *requireGroupedWin {
		rep, err := bench.ReadGroupedReport(*groupedOut)
		if err == nil {
			err = bench.CheckGroupedWin(rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("grouped guard: %s ok\n", *groupedOut)
	}
	if *grouped || *requireGroupedWin {
		return
	}
	if *p2p {
		if err := bench.WriteP2PBench(*p2pOut); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
	}
	if *requireP2PWin {
		rep, err := bench.ReadP2PReport(*p2pOut)
		if err == nil {
			err = bench.CheckP2PWin(rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("p2p guard: %s ok\n", *p2pOut)
	}
	if *p2p || *requireP2PWin {
		return
	}
	if *kernel {
		if err := bench.WriteKernelBench(*kernelOut, *kernelReps); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
	}
	if *requireSpeedup > 0 {
		if err := bench.RequireKernelSpeedup(*kernelOut, *requireSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("kernel guard: %s ok\n", *kernelOut)
	}
	if *kernel || *requireSpeedup > 0 {
		return
	}
	if *overlap {
		if err := bench.WriteOverlapBench(*overlapOut, *overlapIters, *overlapReps, *overlapH, *overlapN); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
	}
	if *requireBI {
		if err := bench.RequireBitIdentical(*overlapOut); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("bit-identity guard: %s ok\n", *overlapOut)
	}
	if *overlap || *requireBI {
		return
	}
	if *list {
		fmt.Println("table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 ext-tp ext-bubble ext-hybrid all")
		return
	}
	if err := run(*exp, *width); err != nil {
		fmt.Fprintln(os.Stderr, "weipipe-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, width int) error {
	timelines := map[string]func(int) (string, error){
		"fig1": bench.Figure1, "fig2": bench.Figure2,
		"fig3": bench.Figure3, "fig4": bench.Figure4,
	}
	tables := map[string]func() (*bench.Experiment, error){
		"table2": bench.Table2, "table3": bench.Table3, "table4": bench.Table4,
		"fig5": bench.Fig5, "fig6": bench.Fig6, "fig7": bench.Fig7,
		"fig8": bench.Fig8, "fig9": bench.Fig9,
		"ext-tp": bench.ExtTP, "ext-bubble": bench.ExtBubble, "ext-hybrid": bench.ExtHybrid,
	}

	switch {
	case exp == "all":
		// Stamp the provenance of regenerated numbers: the cost model does
		// no tensor math, but the stamp keys artifacts (EXPERIMENTS
		// regeneration in CI) to the kernel configuration that produced any
		// accompanying functional measurements.
		exact := "exact"
		if !tensor.BackendExact() {
			exact = "tolerance mode"
		}
		fmt.Printf("regenerated by weipipe-bench (kernel backend: %s, %s; %s)\n\n",
			tensor.BackendName(), exact, runtime.GOARCH)
		for _, id := range []string{"fig1", "fig2", "fig3", "fig4"} {
			s, err := timelines[id](width)
			if err != nil {
				return err
			}
			fmt.Printf("== %s ==\n%s\n", id, s)
		}
		exps, err := bench.All()
		if err != nil {
			return err
		}
		for _, e := range exps {
			fmt.Println(e.Format())
		}
		for _, id := range []string{"ext-tp", "ext-bubble", "ext-hybrid"} {
			e, err := tables[id]()
			if err != nil {
				return err
			}
			fmt.Println(e.Format())
		}
		return nil
	case timelines[exp] != nil:
		s, err := timelines[exp](width)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	case tables[exp] != nil:
		e, err := tables[exp]()
		if err != nil {
			return err
		}
		fmt.Print(e.Format())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (use -list)", exp)
	}
}
