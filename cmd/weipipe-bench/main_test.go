package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain re-execs the test binary as the real CLI when the marker
// environment variable is set (see cmd/weipipe-train for the pattern).
func TestMain(m *testing.M) {
	if os.Getenv("WEIPIPE_SMOKE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WEIPIPE_SMOKE_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestSmokeList(t *testing.T) {
	out, err := runSelf(t, "-list")
	if err != nil {
		t.Fatalf("list failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "table2") || !strings.Contains(out, "fig9") {
		t.Fatalf("unexpected -list output:\n%s", out)
	}
}

func TestSmokeFigure(t *testing.T) {
	out, err := runSelf(t, "-exp", "fig4", "-width", "40")
	if err != nil {
		t.Fatalf("fig4 failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "wzb2") || !strings.Contains(out, "bubble") {
		t.Fatalf("unexpected fig4 output:\n%s", out)
	}
}

func TestSmokeUnknownExperiment(t *testing.T) {
	if out, err := runSelf(t, "-exp", "nope"); err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
}

func TestSmokeBitIdentityGuard(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(good, []byte(`{"bit_identical": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"bit_identical": false}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runSelf(t, "-require-bit-identical", "-out", good)
	if err != nil {
		t.Fatalf("guard rejected a passing report: %v\n%s", err, out)
	}
	if !strings.Contains(out, "bit-identity guard") {
		t.Fatalf("unexpected guard output:\n%s", out)
	}
	if out, err := runSelf(t, "-require-bit-identical", "-out", bad); err == nil {
		t.Fatalf("guard accepted a failing report:\n%s", out)
	}
}
