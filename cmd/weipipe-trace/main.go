// weipipe-trace renders the simulated per-worker schedule of any strategy
// as an ASCII timeline — the textual analogue of the paper's Figures 1–4 —
// and aligns measured runtime traces against the model with -compare.
//
// Examples:
//
//	weipipe-trace -strategy weipipe-naive -p 4 -n 8
//	weipipe-train -p 4 -strategy wzb2 -trace out.json && \
//	    weipipe-trace -compare out.json          # measured vs simulated
package main

import (
	"flag"
	"fmt"
	"os"

	"weipipe/internal/bench"
	"weipipe/internal/cluster"
	"weipipe/internal/cost"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
)

func main() {
	strategy := flag.String("strategy", "weipipe-interleave", "strategy to trace")
	p := flag.Int("p", 4, "workers")
	n := flag.Int("n", 8, "microbatches")
	width := flag.Int("width", 96, "timeline width in characters")
	chrome := flag.String("chrome", "", "also write a Chrome/Perfetto trace JSON to this path")
	compare := flag.String("compare", "", "compare a measured trace JSON (from weipipe-train -trace) against the simulated schedule for the same strategy/p/n and print per-phase deltas")
	p2pMode := flag.String("p2p-mode", "", "P2P link model for the -chrome simulated schedule: frame, batched, duplex, auto (-compare reads the mode from the measured trace's metadata instead)")
	flag.Parse()

	if *compare != "" {
		blob, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-trace:", err)
			os.Exit(1)
		}
		rep, err := bench.CompareTrace(blob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-trace:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}

	s, err := bench.Timeline(*strategy, *p, *n, *width)
	if err != nil {
		fmt.Fprintln(os.Stderr, "weipipe-trace:", err)
		os.Exit(1)
	}
	fmt.Print(s)
	fmt.Println("legend: F forward · B activation-gradient pass · W weight-gradient pass · '.' idle")

	if *chrome != "" {
		w := cost.Workload{H: 1024, S: 4096, G: 4, L: *p, N: *n, P: *p, Heads: 16}.WithDefaults()
		tasks, err := schedule.Build(*strategy, schedule.Spec{
			W: w, GPU: cluster.A800(), Top: cluster.NVLinkSingle(*p), Overlap: true,
			P2PMode: *p2pMode,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-trace:", err)
			os.Exit(1)
		}
		res, err := sim.Run(tasks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-trace:", err)
			os.Exit(1)
		}
		blob, err := res.ChromeTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-trace:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*chrome, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "weipipe-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (open in ui.perfetto.dev)\n", *chrome)
	}
}
