package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"weipipe/internal/trace"
)

// TestMain re-execs the test binary as the real CLI when the marker
// environment variable is set (see cmd/weipipe-train for the pattern).
func TestMain(m *testing.M) {
	if os.Getenv("WEIPIPE_SMOKE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WEIPIPE_SMOKE_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestSmokeTimeline(t *testing.T) {
	out, err := runSelf(t, "-strategy", "wzb2", "-p", "2", "-n", "4", "-width", "40")
	if err != nil {
		t.Fatalf("timeline failed: %v\n%s", err, out)
	}
	for _, want := range []string{"wzb2: P=2 workers", "legend:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeChromeExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sim.json")
	out, err := runSelf(t, "-strategy", "wzb2", "-p", "2", "-n", "4", "-width", "40", "-chrome", path)
	if err != nil {
		t.Fatalf("chrome export failed: %v\n%s", err, out)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if events, _, err := trace.ParseChrome(blob); err != nil || len(events) == 0 {
		t.Fatalf("chrome file invalid: %v (%d events)", err, len(events))
	}
}

func TestSmokeCompare(t *testing.T) {
	// A minimal measured trace: one rank, one 10ms step with a 2ms F span.
	set := trace.NewSet(2, 64)
	const ms = int64(1e6)
	for r := 0; r < 2; r++ {
		tr := set.Rank(r)
		tr.Emit(0, 10*ms, trace.CodeStep, 0, 0)
		tr.Emit(ms, 2*ms, trace.CodeF, 0, 0)
	}
	blob, err := set.ChromeTrace(&trace.RunMeta{Strategy: "wzb2", P: 2, N: 4, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "measured.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runSelf(t, "-compare", path)
	if err != nil {
		t.Fatalf("compare failed: %v\n%s", err, out)
	}
	for _, want := range []string{"compare: wzb2 p=2 n=4", "measured", "simulated", "calibration:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeCompareRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := runSelf(t, "-compare", path); err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
}
