// weipipe-launch is the cross-process elastic training supervisor: it
// spawns one OS process per rank (plus optional hot spares), trains a
// Llama-style model with WZB2 weight-pipeline parallelism over a real TCP
// mesh, and survives rank failures — SIGKILL, stalls, network partitions —
// by re-admitting spares, shrinking the world, or restarting from the last
// coordinated checkpoint, each repair fenced by a fresh epoch.
//
// With -schedule or -faults it doubles as the chaos soak driver: a seeded
// fault schedule is executed against the cluster and the final weights are
// verified bit-identical to a fault-free in-process replay of the same
// incarnation history.
//
// Examples:
//
//	weipipe-launch -ranks 4 -iters 20                      # plain 4-process run
//	weipipe-launch -ranks 4 -spares 1 -chaos 0.01 \
//	    -faults 3 -seed 7 -verify                          # seeded chaos soak
//	weipipe-launch -ranks 4 -checkpoint /tmp/m.wpck \
//	    -ckpt-every 5                                      # with disk fallback
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/launch"
	"weipipe/internal/pipeline"
)

func main() {
	// A process spawned by a supervisor must divert before flag parsing:
	// its argv is the parent's, not a worker command line.
	if launch.IsWorker() {
		os.Exit(launch.WorkerMain())
	}

	ranks := flag.Int("ranks", 4, "initial world size (processes)")
	spares := flag.Int("spares", 0, "hot-spare processes beyond -ranks")
	iters := flag.Int("iters", 10, "training iterations")
	n := flag.Int("n", 12, "microbatches per iteration (must divide every world size)")
	g := flag.Int("g", 2, "sequences per microbatch")
	vocab := flag.Int("vocab", 256, "vocabulary size")
	hidden := flag.Int("hidden", 64, "hidden dimension")
	layers := flag.Int("layers", 4, "transformer layers")
	heads := flag.Int("heads", 4, "attention heads")
	seq := flag.Int("seq", 32, "sequence length")
	seed := flag.Uint64("seed", 42, "model / schedule seed")
	lr := flag.Float64("lr", 1e-3, "AdamW learning rate")
	ckpt := flag.String("checkpoint", "", "coordinated checkpoint path (enables restart fallback)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint every k iterations (0 = off)")
	chaos := flag.Float64("chaos", 0, "frame drop/dup/reorder probability on every link")
	faults := flag.Int("faults", 0, "number of seeded process-level faults to schedule")
	verify := flag.Bool("verify", false, "replay the run in-process and require bit-identical weights")
	epochTimeout := flag.Duration("epoch-timeout", 2*time.Minute, "deadline for one incarnation to resolve")
	flag.Parse()

	spec := launch.TrainSpec{
		Vocab: *vocab, Hidden: *hidden, Layers: *layers, Heads: *heads,
		MaxSeq: *seq, ModelSeed: *seed, LR: *lr, Eps: 1e-8,
		Iters: *iters, MicroBatches: *n, MicroBatchSize: *g,
		BatchSeed:       *seed * 2654435761,
		CheckpointEvery: *ckptEvery, CheckpointPath: *ckpt,
	}
	if *chaos > 0 {
		spec.Chaos = &comm.ChaosConfig{
			Seed: *seed, Drop: *chaos, Dup: *chaos, Reorder: *chaos,
		}
	}
	o := launch.Options{
		Ranks: *ranks, Spares: *spares, Spec: spec,
		Log: os.Stderr, EpochTimeout: *epochTimeout,
	}
	if *faults > 0 {
		o.Schedule = launch.GenSchedule(*seed, *ranks, *iters, *faults)
	}

	rep, err := launch.RunSupervisor(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "weipipe-launch: %v\n", err)
		os.Exit(1)
	}
	for _, ev := range rep.History {
		fmt.Printf("epoch %d: world=%d start=%d policy=%s dead=%v\n",
			ev.Epoch, ev.World, ev.StartIter, ev.Policy, ev.Dead)
	}
	final := rep.Losses[len(rep.Losses)-1]
	fmt.Printf("done: %d incarnations, final loss %.6f, weights %s\n",
		len(rep.History), final, rep.WeightsHash)

	if *verify {
		_, w, err := launch.ReplayOracle(spec, rep.History)
		if err != nil {
			fmt.Fprintf(os.Stderr, "weipipe-launch: oracle replay: %v\n", err)
			os.Exit(1)
		}
		oracle := fmt.Sprintf("%016x", pipeline.HashWeights(w))
		if oracle != rep.WeightsHash {
			fmt.Fprintf(os.Stderr, "weipipe-launch: DIVERGED: cluster %s vs oracle %s\n",
				rep.WeightsHash, oracle)
			os.Exit(1)
		}
		fmt.Println("verified: bit-identical to fault-free replay")
	}
}
