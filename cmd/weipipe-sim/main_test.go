package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain re-execs the test binary as the real CLI when the marker
// environment variable is set (see cmd/weipipe-train for the pattern).
func TestMain(m *testing.M) {
	if os.Getenv("WEIPIPE_SMOKE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WEIPIPE_SMOKE_MAIN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestSmokeSimulate(t *testing.T) {
	out, err := runSelf(t,
		"-strategy", "wzb2", "-H", "512", "-S", "1024", "-G", "1",
		"-L", "4", "-N", "8", "-P", "4", "-topo", "nvlink")
	if err != nil {
		t.Fatalf("simulate failed: %v\n%s", err, out)
	}
	for _, want := range []string{"strategy", "throughput", "bubble ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeCompareTable(t *testing.T) {
	out, err := runSelf(t,
		"-compare", "-H", "512", "-S", "1024", "-G", "1",
		"-L", "4", "-N", "8", "-P", "4", "-topo", "nvlink")
	if err != nil {
		t.Fatalf("compare failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "tokens/s/GPU") || !strings.Contains(out, "wzb2") {
		t.Fatalf("unexpected compare output:\n%s", out)
	}
}

func TestSmokeRejectsUnknownTopology(t *testing.T) {
	if out, err := runSelf(t, "-topo", "carrier-pigeon"); err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
}
