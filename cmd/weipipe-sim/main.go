// weipipe-sim runs the performance model for one (strategy, workload,
// topology) configuration and prints throughput, iteration time, bubble
// ratio and the memory estimate.
//
// Example (the paper's Table 2 long-context row):
//
//	weipipe-sim -strategy weipipe-interleave -H 4096 -S 16384 -G 4 -L 32 -N 64 -P 16 -topo nvlink2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"weipipe"
	"weipipe/internal/cost"
)

func main() {
	strategy := flag.String("strategy", "weipipe-interleave", "strategy: weipipe-interleave, weipipe-naive, wzb1, wzb2, 1f1b, gpipe, zb1, zb2, fsdp, dp")
	h := flag.Int("H", 2048, "hidden size")
	s := flag.Int("S", 16384, "sequence length")
	g := flag.Int("G", 4, "microbatch size")
	l := flag.Int("L", 32, "layers")
	n := flag.Int("N", 64, "microbatches per iteration")
	p := flag.Int("P", 16, "workers")
	topo := flag.String("topo", "nvlink2", "topology: nvlink, nvlink2, pcie-eth, nvlink-eth")
	perServer := flag.Int("per-server", 8, "GPUs per server for grouped topologies")
	recompute := flag.Bool("recompute", true, "activation checkpointing")
	linkScale := flag.Float64("link-scale", 1, "calibrated link-duration multiplier (from `weipipe-bench -overlap`'s suggested_link_scale)")
	p2pMode := flag.String("p2p-mode", "", "P2P link model: frame (default; one link task per belt hop), batched (merge a tick's same-link hops into one envelope transfer), duplex (per-belt lanes per link), auto (per link from topology tier and latency)")
	compare := flag.Bool("compare", false, "run every strategy and print a ranked table")
	mtbf := flag.Duration("mtbf", 0, "mean time between failures of the whole cluster (e.g. 6h); when set, prints the Young/Daly-optimal -ckpt-every per strategy")
	ckptBW := flag.Float64("ckpt-bw", 2, "checkpoint write bandwidth in GB/s (for -mtbf)")
	flag.Parse()

	w := weipipe.Workload{H: *h, S: *s, G: *g, L: *l, N: *n, P: *p, Recompute: *recompute}
	var top weipipe.Topology
	switch *topo {
	case "nvlink":
		top = weipipe.NVLinkSingle(*p)
	case "nvlink2":
		top = weipipe.NVLinkTwoClusters(*p)
	case "pcie-eth":
		top = weipipe.PCIeEthernet(*p, *perServer)
	case "nvlink-eth":
		top = weipipe.NVLinkEthernet(*p, *perServer)
	default:
		fmt.Fprintf(os.Stderr, "weipipe-sim: unknown topology %q\n", *topo)
		os.Exit(1)
	}

	if *compare {
		runCompare(w, top, *mtbf, *ckptBW)
		return
	}
	res, err := weipipe.SimulateP2P(weipipe.Strategy(*strategy), w, top, *linkScale, *p2pMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "weipipe-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("strategy           %s\n", *strategy)
	fmt.Printf("workload           H=%d S=%d G=%d L=%d N=%d P=%d recompute=%v\n",
		*h, *s, *g, *l, *n, *p, *recompute)
	fmt.Printf("topology           %s\n", top.Name)
	if *p2pMode != "" {
		fmt.Printf("p2p mode           %s\n", *p2pMode)
	}
	fmt.Printf("memory             %.1f GB\n", res.MemoryGB)
	if res.OOM {
		fmt.Println("result             OOM (exceeds 80 GB A800 budget)")
		return
	}
	fmt.Printf("iteration time     %.3f s\n", res.IterationSeconds)
	fmt.Printf("throughput         %.0f tokens/s/GPU\n", res.TokensPerSecPerGPU)
	fmt.Printf("bubble ratio       %.1f %%\n", res.BubbleRatio*100)
	if *mtbf > 0 {
		ckptSec, every := ckptPlan(w, res.IterationSeconds, *mtbf, *ckptBW)
		fmt.Printf("checkpoint         %.1f GB, %.1f s to write at %.1f GB/s\n",
			w.CheckpointBytes()/(1<<30), ckptSec, *ckptBW)
		fmt.Printf("recommended        -ckpt-every %d  (Young/Daly for MTBF %s; with -elastic shrink/spare the checkpoint only backstops double failures — stretch it)\n",
			every, mtbf)
	}
}

// ckptPlan returns the checkpoint write time and the Young/Daly-optimal
// checkpoint cadence in iterations for one strategy's simulated iteration
// time.
func ckptPlan(w weipipe.Workload, iterSec float64, mtbf time.Duration, bwGB float64) (float64, int) {
	ckptSec := w.CheckpointBytes() / (bwGB * 1e9)
	return ckptSec, cost.OptimalCheckpointIters(iterSec, ckptSec, mtbf.Seconds())
}

// runCompare simulates every strategy on the workload and prints them
// ranked by throughput (OOMs last). With mtbf set, a Young/Daly
// recommended -ckpt-every column is added per strategy.
func runCompare(w weipipe.Workload, top weipipe.Topology, mtbf time.Duration, ckptBW float64) {
	strategies := []weipipe.Strategy{
		weipipe.WeiPipeInterleave, weipipe.WeiPipeNaive, weipipe.WZB1, weipipe.WZB2,
		weipipe.OneFOneB, weipipe.GPipe, weipipe.ZB1, weipipe.ZB2,
		weipipe.FSDP, weipipe.DP, weipipe.TP, weipipe.SP,
	}
	type row struct {
		s   weipipe.Strategy
		res weipipe.SimResult
	}
	var rows []row
	for _, s := range strategies {
		wl := w
		if s == weipipe.ZB1 || s == weipipe.ZB2 {
			wl.Recompute = false
		}
		res, err := weipipe.Simulate(s, wl, top)
		if err != nil {
			fmt.Fprintf(os.Stderr, "weipipe-sim: %s: %v\n", s, err)
			continue
		}
		rows = append(rows, row{s, res})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].res.OOM != rows[j].res.OOM {
			return !rows[i].res.OOM
		}
		return rows[i].res.TokensPerSecPerGPU > rows[j].res.TokensPerSecPerGPU
	})
	ckptCol := ""
	if mtbf > 0 {
		ckptCol = "  ckpt-every"
	}
	fmt.Printf("%-20s %14s %10s %9s%s\n", "strategy", "tokens/s/GPU", "memory", "bubble", ckptCol)
	for _, r := range rows {
		if r.res.OOM {
			fmt.Printf("%-20s %14s %9.1fG %9s\n", r.s, "OOM", r.res.MemoryGB, "-")
			continue
		}
		extra := ""
		if mtbf > 0 {
			_, every := ckptPlan(w, r.res.IterationSeconds, mtbf, ckptBW)
			extra = fmt.Sprintf(" %11d", every)
		}
		fmt.Printf("%-20s %14.0f %9.1fG %8.1f%%%s\n",
			r.s, r.res.TokensPerSecPerGPU, r.res.MemoryGB, r.res.BubbleRatio*100, extra)
	}
	if mtbf > 0 {
		fmt.Printf("\ncheckpoint %.1f GB, %.1f s at %.1f GB/s; -ckpt-every is the Young/Daly optimum for MTBF %s\n",
			w.CheckpointBytes()/(1<<30), w.CheckpointBytes()/(ckptBW*1e9), ckptBW, mtbf)
	}
}
