package weipipe

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section (regenerating the rows/series), plus
// ablation benchmarks for the design choices DESIGN.md calls out and
// wall-clock benchmarks of the real functional runtimes.
//
//	go test -bench=. -benchmem
//
// Reported custom metrics:
//
//	weipipe_tps       modelled WeiPipe-Interleave tokens/s/GPU
//	advantage_x       WeiPipe over the best non-WeiPipe baseline
//	bubble_pct        simulated compute-idle percentage
//	speedup_x         ablation on/off ratio

import (
	"fmt"
	"testing"

	"weipipe/internal/bench"
	"weipipe/internal/cluster"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
)

// reportExperiment re-generates a table/figure b.N times and reports the
// headline metric from the last row.
func reportExperiment(b *testing.B, build func() (*bench.Experiment, error)) {
	b.Helper()
	var e *bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = build()
		if err != nil {
			b.Fatal(err)
		}
	}
	row := e.Rows[len(e.Rows)-1]
	if c, ok := row.Cells["weipipe-interleave"]; ok && !c.OOM {
		b.ReportMetric(c.ThroughputTPS, "weipipe_tps")
		if _, base := row.BestExcluding("weipipe-interleave"); base > 0 {
			b.ReportMetric(c.ThroughputTPS/base, "advantage_x")
		}
		b.ReportMetric(c.BubbleRatio*100, "bubble_pct")
	}
}

// BenchmarkTable2 regenerates paper Table 2 (throughput + memory, 16 GPUs,
// NVLink clusters).
func BenchmarkTable2(b *testing.B) { reportExperiment(b, bench.Table2) }

// BenchmarkTable3 regenerates paper Table 3 (PCIe + Ethernet, 16 GPUs).
func BenchmarkTable3(b *testing.B) { reportExperiment(b, bench.Table3) }

// BenchmarkTable4 regenerates paper Table 4 (8 GPUs, all NVLink, L=16).
func BenchmarkTable4(b *testing.B) { reportExperiment(b, bench.Table4) }

// BenchmarkFigure5 regenerates the activation/weight crossover sweep.
func BenchmarkFigure5(b *testing.B) { reportExperiment(b, bench.Fig5) }

// BenchmarkFigure6 regenerates small-scale weak scaling (paper Fig. 6).
func BenchmarkFigure6(b *testing.B) { reportExperiment(b, bench.Fig6) }

// BenchmarkFigure7 regenerates large-scale weak scaling (paper Fig. 7).
func BenchmarkFigure7(b *testing.B) { reportExperiment(b, bench.Fig7) }

// BenchmarkFigure8 regenerates small-scale strong scaling (paper Fig. 8).
func BenchmarkFigure8(b *testing.B) { reportExperiment(b, bench.Fig8) }

// BenchmarkFigure9 regenerates large-scale strong scaling (paper Fig. 9).
func BenchmarkFigure9(b *testing.B) { reportExperiment(b, bench.Fig9) }

// benchTimeline renders one of the paper's schedule diagrams.
func benchTimeline(b *testing.B, f func(int) (string, error)) {
	b.Helper()
	var s string
	var err error
	for i := 0; i < b.N; i++ {
		s, err = f(96)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(s)), "chars")
}

// BenchmarkFigure1Timeline renders the WeiPipe-Naive schedule (paper Fig. 1).
func BenchmarkFigure1Timeline(b *testing.B) { benchTimeline(b, bench.Figure1) }

// BenchmarkFigure2Timeline renders WeiPipe-Interleave (paper Fig. 2).
func BenchmarkFigure2Timeline(b *testing.B) { benchTimeline(b, bench.Figure2) }

// BenchmarkFigure3Timeline renders WZB1 (paper Fig. 3).
func BenchmarkFigure3Timeline(b *testing.B) { benchTimeline(b, bench.Figure3) }

// BenchmarkFigure4Timeline renders WZB2 (paper Fig. 4).
func BenchmarkFigure4Timeline(b *testing.B) { benchTimeline(b, bench.Figure4) }

// ---- ablations -------------------------------------------------------------

// ablationWorkload is a communication-sensitive configuration where the
// ablated mechanisms matter.
func ablationSpec() schedule.Spec {
	w := Workload{H: 2048, S: 16384, G: 4, L: 32, N: 32, P: 8, Recompute: true}.WithDefaults()
	return schedule.Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkEthernet(8, 4), Overlap: true}
}

func runSpec(b *testing.B, spec schedule.Spec) float64 {
	b.Helper()
	tasks, err := schedule.Build("weipipe-interleave", spec)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(tasks)
	if err != nil {
		b.Fatal(err)
	}
	return res.Makespan
}

// BenchmarkAblationOverlap compares WeiPipe with and without
// communication/computation overlap (belt prefetching).
func BenchmarkAblationOverlap(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		spec := ablationSpec()
		on = runSpec(b, spec)
		spec.Overlap = false
		off = runSpec(b, spec)
	}
	b.ReportMetric(off/on, "speedup_x")
}

// BenchmarkAblationWireFormat compares the paper's fp16 wire format against
// fp32 transfers (2× bytes).
func BenchmarkAblationWireFormat(b *testing.B) {
	var fp16, fp32 float64
	for i := 0; i < b.N; i++ {
		spec := ablationSpec()
		fp16 = runSpec(b, spec)
		spec.WireFP32 = true
		fp32 = runSpec(b, spec)
	}
	b.ReportMetric(fp32/fp16, "speedup_x")
}

// BenchmarkAblationBeltBuffers compares single- vs double-buffered belts
// (chunk-granularity flow-control slack).
func BenchmarkAblationBeltBuffers(b *testing.B) {
	var single, double float64
	for i := 0; i < b.N; i++ {
		spec := ablationSpec()
		spec.BeltBuffers = 1
		single = runSpec(b, spec)
		spec.BeltBuffers = 2
		double = runSpec(b, spec)
	}
	b.ReportMetric(single/double, "speedup_x")
}

// BenchmarkAblationGradRing compares in-transit gradient accumulation (the
// D belt) against a terminal full-gradient ring all-reduce.
func BenchmarkAblationGradRing(b *testing.B) {
	var belt, terminal float64
	for i := 0; i < b.N; i++ {
		spec := ablationSpec()
		belt = runSpec(b, spec)
		spec.TerminalGradAllReduce = true
		terminal = runSpec(b, spec)
	}
	b.ReportMetric(terminal/belt, "speedup_x")
}

// BenchmarkAblationRecompute compares WeiPipe with and without activation
// checkpointing: time cost of the extra forward vs the memory saved.
func BenchmarkAblationRecompute(b *testing.B) {
	var withR, withoutR SimResult
	var err error
	for i := 0; i < b.N; i++ {
		w := Workload{H: 2048, S: 16384, G: 4, L: 32, N: 32, P: 8, Recompute: true}
		top := NVLinkEthernet(8, 4)
		withR, err = Simulate(WeiPipeInterleave, w, top)
		if err != nil {
			b.Fatal(err)
		}
		w.Recompute = false
		withoutR, err = Simulate(WeiPipeInterleave, w, top)
		if err != nil {
			b.Fatal(err)
		}
	}
	if withoutR.TokensPerSecPerGPU > 0 {
		b.ReportMetric(withoutR.TokensPerSecPerGPU/withR.TokensPerSecPerGPU, "speedup_x")
	}
	b.ReportMetric(withoutR.MemoryGB/withR.MemoryGB, "mem_ratio")
}

// ---- real functional-runtime benchmarks ------------------------------------

// benchTrain runs real (CPU) training iterations of a tiny model.
func benchTrain(b *testing.B, s Strategy, p int) {
	b.Helper()
	cfg := Config{Vocab: 32, Hidden: 16, Layers: 4, Heads: 2, MaxSeq: 16, Seed: 1}
	opts := DefaultOptions(0.01)
	batches := Microbatches(1, 2*p, 2, 32, 16)
	fn := func(int) []Batch { return batches }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCluster(s, p, cfg, opts, 1, fn); err != nil {
			b.Fatal(err)
		}
	}
	tokens := float64(len(batches) * 2 * 16)
	b.ReportMetric(tokens*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkTrainWeiPipeInterleave measures the real in-process runtime.
func BenchmarkTrainWeiPipeInterleave(b *testing.B) { benchTrain(b, WeiPipeInterleave, 2) }

// BenchmarkTrainOneFOneB measures the real 1F1B runtime.
func BenchmarkTrainOneFOneB(b *testing.B) { benchTrain(b, OneFOneB, 2) }

// BenchmarkTrainFSDP measures the real FSDP runtime.
func BenchmarkTrainFSDP(b *testing.B) { benchTrain(b, FSDP, 2) }

// BenchmarkTrainSerial measures the serial reference.
func BenchmarkTrainSerial(b *testing.B) { benchTrain(b, Serial, 1) }

var _ = fmt.Sprintf // keep fmt for future metric labels

// BenchmarkExtTP regenerates the tensor/sequence-parallel comparison.
func BenchmarkExtTP(b *testing.B) { reportExperiment(b, bench.ExtTP) }

// BenchmarkExtBubble regenerates the bubble-vs-N analysis table.
func BenchmarkExtBubble(b *testing.B) { reportExperiment(b, bench.ExtBubble) }

// BenchmarkExtHybrid regenerates the flat-vs-hybrid ring scaling table.
func BenchmarkExtHybrid(b *testing.B) { reportExperiment(b, bench.ExtHybrid) }
