// Long-context scenario: the workload from the paper's introduction — a
// multi-billion-parameter model with a 16k context on a cluster whose
// inter-node links are 10 Gb Ethernet. The performance model shows why
// activation-passing pipelines and FSDP stall while WeiPipe stays
// compute-bound: a boundary activation (G·S·H) dwarfs a layer's weights
// (12H²) at this ratio.
//
//	go run ./examples/longcontext
package main

import (
	"fmt"
	"log"

	"weipipe"
)

func main() {
	w := weipipe.Workload{
		H: 4096, S: 16384, G: 4, L: 32, N: 64, P: 16,
		Recompute: true,
	}
	top := weipipe.NVLinkTwoClusters(16)

	fmt.Printf("Long-context training: H=%d S=%d G=%d on %d GPUs (%s)\n", w.H, w.S, w.G, w.P, top.Name)
	ww := w.WithDefaults()
	fmt.Printf("activation/weight ratio G·S/(12H) = %.1f  (≫1 ⇒ weight-passing wins)\n\n", ww.WeightRatio())

	strategies := []weipipe.Strategy{
		weipipe.OneFOneB, weipipe.ZB1, weipipe.ZB2, weipipe.FSDP,
		weipipe.WeiPipeNaive, weipipe.WeiPipeInterleave, weipipe.WZB1, weipipe.WZB2,
	}
	fmt.Printf("%-20s %14s %10s %10s\n", "strategy", "tokens/s/GPU", "memory", "bubble")
	var best weipipe.Strategy
	var bestTPS float64
	for _, s := range strategies {
		wl := w
		if s == weipipe.ZB1 || s == weipipe.ZB2 {
			wl.Recompute = false
			wl.G = 1 // the paper's memory-forced microbatch reduction
		}
		res, err := weipipe.Simulate(s, wl, top)
		if err != nil {
			log.Fatal(err)
		}
		if res.OOM {
			fmt.Printf("%-20s %14s %9.1fG %10s\n", s, "OOM", res.MemoryGB, "-")
			continue
		}
		fmt.Printf("%-20s %14.0f %9.1fG %9.1f%%\n", s, res.TokensPerSecPerGPU, res.MemoryGB, res.BubbleRatio*100)
		if res.TokensPerSecPerGPU > bestTPS {
			best, bestTPS = s, res.TokensPerSecPerGPU
		}
	}
	fmt.Printf("\nwinner: %s — weights (and their gradients) are the cheaper thing to move.\n", best)
}
