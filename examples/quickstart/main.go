// Quickstart: train a tiny Llama-style model with WeiPipe-Interleave on
// four in-process workers and watch the loss fall.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"weipipe"
)

func main() {
	cfg := weipipe.Config{
		Vocab:  64,
		Hidden: 32,
		Layers: 4,
		Heads:  2,
		MaxSeq: 32,
		Seed:   1,
	}
	opts := weipipe.DefaultOptions(3e-3)

	// Overfit a fixed set of eight microbatches so progress is visible.
	batches := weipipe.Microbatches(7, 8, 2, cfg.Vocab, cfg.MaxSeq)
	fixed := func(int) []weipipe.Batch { return batches }

	const iters = 30
	res, err := weipipe.RunCluster(weipipe.WeiPipeInterleave, 4, cfg, opts, iters, fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("WeiPipe-Interleave on 4 workers (weights circulate; activations stay put):")
	for i, l := range res.Losses {
		if i%5 == 0 || i == iters-1 {
			fmt.Printf("  iter %2d  loss %.4f\n", i, l)
		}
	}
	if res.Losses[iters-1] < res.Losses[0] {
		fmt.Printf("loss fell from %.4f to %.4f — the weight pipeline trains correctly.\n",
			res.Losses[0], res.Losses[iters-1])
	} else {
		fmt.Println("warning: loss did not decrease")
	}
}
