// Equivalence: every parallel strategy in this repository — the four
// WeiPipe variants and all baselines — trains the same model on the same
// microbatches and lands on the same post-step weights as a serial run.
// This is the correctness guarantee behind the performance claims: the
// schedules reorder work and communication, never mathematics.
//
//	go run ./examples/equivalence
package main

import (
	"fmt"
	"log"
	"math"

	"weipipe"
)

func main() {
	cfg := weipipe.Config{Vocab: 13, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 6, Seed: 42}
	opts := weipipe.DefaultOptions(0.01)
	opts.Adam.Eps = 1e-5 // damp float-reassociation noise in the comparison

	const p, n, iters = 4, 8, 2
	batchSets := make([][]weipipe.Batch, iters)
	for i := range batchSets {
		batchSets[i] = weipipe.Microbatches(uint64(100+i), n, 2, cfg.Vocab, cfg.MaxSeq)
	}
	fn := func(i int) []weipipe.Batch { return batchSets[i] }

	ref, err := weipipe.RunCluster(weipipe.Serial, 1, cfg, opts, iters, fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial reference: loss %.6f → %.6f, %d weights\n\n",
		ref.Losses[0], ref.Losses[iters-1], len(ref.Weights))

	fmt.Printf("%-20s %12s %16s\n", "strategy", "loss diff", "max weight diff")
	for _, s := range weipipe.Strategies() {
		res, err := weipipe.RunCluster(s, p, cfg, opts, iters, fn)
		if err != nil {
			log.Fatalf("%s: %v", s, err)
		}
		lossDiff := math.Abs(res.Losses[iters-1] - ref.Losses[iters-1])
		var wDiff float64
		for i := range ref.Weights {
			d := math.Abs(float64(res.Weights[i] - ref.Weights[i]))
			if d > wDiff {
				wDiff = d
			}
		}
		status := "✓"
		if lossDiff > 1e-4 || wDiff > 5e-4 {
			status = "✗ DIVERGED"
		}
		fmt.Printf("%-20s %12.2e %16.2e  %s\n", s, lossDiff, wDiff, status)
	}
	fmt.Println("\nall strategies implement the same mathematics — only the schedules differ.")
}
