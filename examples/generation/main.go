// Generation: the full lifecycle — train a model with WeiPipe-Interleave,
// checkpoint it to disk, load the checkpoint back, and sample continuations
// of the synthetic token stream. The stream is a drifting pattern (each
// token usually near its predecessor), so a trained model's greedy
// continuations should mostly step upward — visible structure that the
// untrained model lacks.
//
//	go run ./examples/generation
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"weipipe"
)

func main() {
	cfg := weipipe.Config{Vocab: 32, Hidden: 32, Layers: 3, Heads: 2, MaxSeq: 24, Seed: 21}
	opts := weipipe.DefaultOptions(3e-3)

	// Train on a fixed corpus so the structure is learnable quickly.
	batches := weipipe.Microbatches(8, 8, 2, cfg.Vocab, cfg.MaxSeq)
	fmt.Println("training with WeiPipe-Interleave on 2 workers…")
	res, err := weipipe.RunCluster(weipipe.WeiPipeInterleave, 2, cfg, opts, 40,
		func(int) []weipipe.Batch { return batches })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss: %.3f → %.3f\n", res.Losses[0], res.Losses[len(res.Losses)-1])

	// Checkpoint and restore (the round trip a real run would rely on).
	m := weipipe.BuildModel(cfg)
	weipipe.LoadWeights(m, res.Weights)
	dir, err := os.MkdirTemp("", "weipipe-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.wpck")
	if err := weipipe.SaveCheckpoint(path, weipipe.SnapshotModel(m)); err != nil {
		log.Fatal(err)
	}
	snap, err := weipipe.LoadCheckpoint(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := snap.Restore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint round trip OK (%s)\n", path)

	prompt := batches[0].Tokens[0][:6]
	greedy, err := weipipe.Generate(restored, prompt, 12, weipipe.GenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sampled, err := weipipe.Generate(restored, prompt, 12, weipipe.GenOptions{Temperature: 0.8, TopK: 5, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prompt:   %v\n", prompt)
	fmt.Printf("greedy:   %v\n", greedy[len(prompt):])
	fmt.Printf("sampled:  %v\n", sampled[len(prompt):])

	// Count "stream-like" steps (next ≈ prev+1..3 mod V) in the greedy tail.
	streamy := 0
	for i := len(prompt); i < len(greedy); i++ {
		d := (greedy[i] - greedy[i-1] + cfg.Vocab) % cfg.Vocab
		if d >= 1 && d <= 3 {
			streamy++
		}
	}
	fmt.Printf("greedy continuation follows the stream pattern in %d/12 steps\n", streamy)
}
