// TCP cluster: the same WeiPipe training, but the ranks talk through a real
// TCP mesh on loopback — every weight chunk and gradient chunk crosses a
// socket, exactly as a multi-machine deployment would. Each rank runs in
// its own goroutine here; pointing the address list at real hosts is the
// only change needed to span machines.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"sync"

	"weipipe"
)

func main() {
	const (
		p     = 3
		iters = 5
		n     = 6 // microbatches per iteration
	)
	cfg := weipipe.Config{Vocab: 64, Hidden: 24, Layers: 3, Heads: 2, MaxSeq: 24, Seed: 3}
	opts := weipipe.DefaultOptions(2e-3)
	opts.MixedPrecision = true // ship fp16 chunks like the paper

	addrs, err := weipipe.LoopbackAddrs(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bringing up a %d-rank TCP mesh: %v\n", p, addrs)

	transports := make([]weipipe.Transport, p)
	losses := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := weipipe.DialTCP(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			transports[r] = tr
			trainer, err := weipipe.NewTrainer(weipipe.WeiPipeInterleave, tr, cfg, opts)
			if err != nil {
				errs[r] = err
				return
			}
			for it := 0; it < iters; it++ {
				batches := weipipe.Microbatches(uint64(100+it), n, 2, cfg.Vocab, cfg.MaxSeq)
				loss, err := trainer.TrainIteration(batches)
				if err != nil {
					errs[r] = err
					return
				}
				losses[r] = append(losses[r], loss)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	for it := 0; it < iters; it++ {
		fmt.Printf("iter %d  loss %.4f (identical on every rank: %v)\n",
			it, losses[0][it], losses[0][it] == losses[1][it] && losses[1][it] == losses[2][it])
	}
	for _, tr := range transports {
		if c, ok := tr.(interface{ Close() error }); ok {
			c.Close()
		}
	}
	fmt.Println("done — weight chunks circulated over real sockets.")
}
