// Package weipipe is a from-scratch Go reproduction of "WeiPipe: Weight
// Pipeline Parallelism for Communication-Effective Long-Context Large Model
// Training" (PPoPP 2025).
//
// It bundles two cooperating systems behind one API:
//
//   - A functional distributed-training runtime: goroutine (or TCP) ranks
//     train a real Llama-style transformer on CPU under WeiPipe-Naive,
//     WeiPipe-Interleave, WZB1, WZB2 and every baseline the paper compares
//     against (GPipe, 1F1B, ZB1, ZB2, FSDP/ZeRO-3, DP). All strategies are
//     verified to produce the serial reference's gradients.
//
//   - A deterministic performance simulator that models A800 GPUs on
//     NVLink/PCIe/Ethernet rings and regenerates every table and figure of
//     the paper's evaluation (see internal/bench and cmd/weipipe-bench).
//
// RunCluster/NewTrainer drive the first system, Simulate the second; the
// cmd/ tools and examples/ directory show both in use. Beyond the paper,
// the module also provides tensor and sequence parallelism (internal/tp,
// internal/sp), hybrid WeiPipe×DP rings (NewHybridTrainer), checkpointing,
// and sampling-based generation.
package weipipe

import (
	"weipipe/internal/checkpoint"
	"weipipe/internal/cluster"
	"weipipe/internal/comm"
	"weipipe/internal/cost"
	"weipipe/internal/data"
	"weipipe/internal/generate"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
	"weipipe/internal/schedule"
	"weipipe/internal/sim"
	"weipipe/internal/tensor"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Config describes a Llama-style model (vocab, hidden, layers, heads…).
	Config = model.Config
	// Model is a built transformer.
	Model = model.Model
	// Options configures training (optimizer, recomputation, wire precision).
	Options = pipeline.Options
	// Strategy names a parallel training strategy.
	Strategy = pipeline.Strategy
	// Trainer runs training iterations for one rank.
	Trainer = pipeline.Trainer
	// Batch is one microbatch of token sequences and next-token targets.
	Batch = data.Batch
	// Workload parameterises the performance model (H, S, G, L, N, P).
	Workload = cost.Workload
	// Topology is a ring of workers with per-link bandwidth and latency.
	Topology = cluster.Topology
	// GPUSpec describes an accelerator for the performance model.
	GPUSpec = cluster.GPUSpec
	// Transport is the message fabric a rank communicates over.
	Transport = comm.Transport
	// ClusterResult is the outcome of RunCluster.
	ClusterResult = pipeline.ClusterResult
)

// The training strategies.
const (
	Serial            = pipeline.StrategySerial
	DP                = pipeline.StrategyDP
	FSDP              = pipeline.StrategyFSDP
	GPipe             = pipeline.StrategyGPipe
	OneFOneB          = pipeline.Strategy1F1B
	ZB1               = pipeline.StrategyZB1
	ZB2               = pipeline.StrategyZB2
	WeiPipeNaive      = pipeline.StrategyWeiPipeNaive
	WeiPipeInterleave = pipeline.StrategyWeiPipeInterleave
	WZB1              = pipeline.StrategyWZB1
	WZB2              = pipeline.StrategyWZB2
	// WZB2G is WZB2 with topology-aware grouped weight belts (intra-group
	// circulation + deduplicated inter-group shard exchange).
	WZB2G = pipeline.StrategyWZB2G
)

// Strategies lists every distributed strategy.
func Strategies() []Strategy { return pipeline.Strategies() }

// DefaultOptions returns training options with the paper's AdamW
// hyperparameters at the given learning rate.
func DefaultOptions(lr float64) Options {
	return Options{Adam: optim.DefaultAdamW(lr)}
}

// NewTrainer builds a trainer for one rank on transport t. Every rank must
// pass the same cfg (models are rebuilt from the seed, never broadcast).
func NewTrainer(s Strategy, t Transport, cfg Config, opts Options) (Trainer, error) {
	return pipeline.New(s, t, cfg, opts)
}

// NewInprocCluster returns p connected in-process transports (rank order).
func NewInprocCluster(p int) []Transport {
	return comm.NewCluster(p).Transports()
}

// CodecFunc selects the per-Tag wire codec for a transport fabric.
type CodecFunc = comm.CodecFunc

// BeltBF16 is the bf16 belt wire codec: weight and weight-gradient payloads
// travel as bf16 (half the belt bytes), everything else stays f32.
var BeltBF16 CodecFunc = comm.BeltBF16

// NewInprocClusterCodec is NewInprocCluster with a wire codec (nil = f32).
func NewInprocClusterCodec(p int, codec CodecFunc) []Transport {
	return comm.NewClusterCodec(p, codec).Transports()
}

// DialTCP joins a TCP mesh; addrs lists every rank's listen address.
func DialTCP(rank int, addrs []string) (Transport, error) {
	return comm.DialTCP(rank, addrs)
}

// LoopbackAddrs allocates n free loopback addresses for a local TCP mesh.
func LoopbackAddrs(n int) ([]string, error) { return comm.LoopbackAddrs(n) }

// Fault tolerance. The TCP transport detects peer failure by heartbeat,
// reconnects with bounded backoff, retransmits unacknowledged frames, and
// rejects corrupted ones by CRC; FaultTransport injects deterministic
// message-level faults for testing; RunResilient recovers a training run
// from coordinated checkpoints after a rank dies. See DESIGN.md §9.
type (
	// TCPOptions tunes the TCP transport's deadlines, heartbeats,
	// retransmission and (for tests) frame-level chaos injection.
	TCPOptions = comm.TCPOptions
	// ChaosConfig describes seed-deterministic frame-level fault injection
	// inside the TCP transport (masked by its reliability layer).
	ChaosConfig = comm.ChaosConfig
	// FaultConfig describes seed-deterministic message-level fault
	// injection (visible to the application — for failure-path tests).
	FaultConfig = comm.FaultConfig
	// FaultTransport wraps any Transport with FaultConfig-driven faults.
	FaultTransport = comm.FaultTransport
	// P2PMode is the transport's per-link packaging policy: the baseline
	// frame protocol, batched burst envelopes, duplex ctl lanes, or the
	// auto controller that picks per link from topology and measured RTT.
	// Every mode is bit-identical to the baseline. See DESIGN.md §17.
	P2PMode = comm.P2PMode
	// CommStats is a rank's communication meter, including per-peer fault
	// counters (retransmits, timeouts, reconnects, heartbeat misses…).
	CommStats = comm.Stats
	// PeerFaults is the per-peer fault counter block of CommStats.
	PeerFaults = comm.PeerFaults
	// TimeoutError reports a Recv deadline expiry (matches ErrTimeout).
	TimeoutError = comm.TimeoutError
	// PeerDeadError reports a heartbeat-detected peer failure (matches
	// ErrPeerDead).
	PeerDeadError = comm.PeerDeadError
	// CorruptionError reports a frame that failed validation (matches
	// ErrCorrupt).
	CorruptionError = comm.CorruptionError
	// ResilientOptions configures RunResilient (checkpoint cadence, restart
	// budget, elastic repair policy, straggler watchdog, transport wrapping,
	// LR schedule).
	ResilientOptions = pipeline.ResilientOptions
	// ElasticPolicy selects how RunResilient reacts to dead ranks
	// (ElasticNone / ElasticShrink / ElasticSpare).
	ElasticPolicy = pipeline.ElasticPolicy
	// RepairEvent describes one elastic repair RunResilient performed.
	RepairEvent = pipeline.RepairEvent
	// WatchdogConfig tunes the straggler watchdog (sampling interval, stall
	// threshold, declare-dead behaviour).
	WatchdogConfig = pipeline.WatchdogConfig
	// StragglerReport describes one rank the watchdog flagged as stalled.
	StragglerReport = pipeline.StragglerReport
	// Deadlines is the single timeout budget threaded through the TCP
	// transport, failure detector, membership agreement and barrier layers
	// (Retransmit < Heartbeat < PeerDead < AgreeRound < Barrier).
	Deadlines = comm.Deadlines
)

// The elastic repair policies.
const (
	// ElasticNone restores from the last checkpoint at the same world size.
	ElasticNone = pipeline.ElasticNone
	// ElasticShrink re-shards across the survivors, rebuilding lost shards
	// from buddy replicas — no checkpoint read.
	ElasticShrink = pipeline.ElasticShrink
	// ElasticSpare admits standby spares to preserve the world size,
	// seeding replacements from buddy replicas.
	ElasticSpare = pipeline.ElasticSpare
)

// Sentinel errors for errors.Is against transport failures.
var (
	ErrTimeout  = comm.ErrTimeout
	ErrPeerDead = comm.ErrPeerDead
	ErrCorrupt  = comm.ErrCorrupt
	ErrCrashed  = comm.ErrCrashed
	ErrClosed   = comm.ErrClosed
	// ErrIntegrity matches detected silent-data-corruption (checksummed
	// belts, resident-state guards, ABFT kernel verification).
	ErrIntegrity = comm.ErrIntegrity
)

// P2P link modes (see P2PMode).
const (
	// P2PFrame is the baseline one-frame-at-a-time protocol.
	P2PFrame = comm.P2PFrame
	// P2PBatched coalesces same-tick sends into burst envelopes.
	P2PBatched = comm.P2PBatched
	// P2PDuplex runs a dedicated ctl lane per link.
	P2PDuplex = comm.P2PDuplex
	// P2PAuto picks batched or duplex per link from topology + RTT.
	P2PAuto = comm.P2PAuto
)

// ParseP2PMode parses a -p2p-mode CLI spelling ("", "frame", "batched",
// "duplex", "auto").
func ParseP2PMode(s string) (P2PMode, error) { return comm.ParseP2PMode(s) }

// Silent-data-corruption defense: checksummed weight belts and resident-state
// guards (Options.Integrity), ABFT matmul verification (EnableABFT), the
// windowed grad-norm spike detector (Options.SpikeWindow), per-section
// checkpoint digests (VerifyCheckpoint) and the seeded bit-flip chaos tier
// (GenBitFlips + Options.BitFlip). See DESIGN.md §15.
type (
	// IntegrityError is the typed detection report (matches ErrIntegrity):
	// which rank detected corruption, at which site, in which chunk.
	IntegrityError = comm.IntegrityError
	// IntegritySite names a detection point (belt, retire, weights,
	// moments, kernel…).
	IntegritySite = comm.IntegritySite
	// ABFTError reports a checksum-localized matmul fault (row/column).
	ABFTError = tensor.ABFTError
	// BitFlipEvent schedules one bit flip at a (rank, iteration, site).
	BitFlipEvent = pipeline.BitFlipEvent
	// BitFlipInjector applies a BitFlipEvent schedule (each event fires
	// once, surviving restarts).
	BitFlipInjector = pipeline.BitFlipInjector
	// FlipSite selects what a scheduled bit flip corrupts.
	FlipSite = pipeline.FlipSite
)

// The bit-flip injection sites.
const (
	FlipWeights    = pipeline.FlipWeights
	FlipMomentM    = pipeline.FlipMomentM
	FlipMomentV    = pipeline.FlipMomentV
	FlipBeltWeight = pipeline.FlipBeltWeight
	FlipBeltGrad   = pipeline.FlipBeltGrad
	FlipKernel     = pipeline.FlipKernel
)

// EnableABFT arms algorithm-based fault tolerance on the tensor backend:
// every matmul is verified against row/column checksums and a violation
// surfaces as a localized *ABFTError. Process-global; costs O(n²) extra
// work per O(n³) matmul.
func EnableABFT() { tensor.EnableABFT() }

// DisableABFT restores the unverified kernels.
func DisableABFT() { tensor.DisableABFT() }

// GenBitFlips derives a deterministic bit-flip schedule from a seed: count
// events spread across ranks, the given sites and iterations [2, iters).
func GenBitFlips(seed uint64, ranks, iters, count int, sites []FlipSite) []BitFlipEvent {
	return pipeline.GenBitFlips(seed, ranks, iters, count, sites)
}

// NewBitFlipInjector builds the injector for a schedule (Options.BitFlip).
func NewBitFlipInjector(events []BitFlipEvent) *BitFlipInjector {
	return pipeline.NewBitFlipInjector(events)
}

// VerifyCheckpoint re-reads a checkpoint file, checking the whole-file CRC
// and the per-section digests. It returns the data section names and
// whether the file carried digests (older files verify vacuously).
func VerifyCheckpoint(path string) (sections []string, digested bool, err error) {
	return checkpoint.Verify(path)
}

// DialTCPOpts joins a TCP mesh with explicit fault-tolerance options.
func DialTCPOpts(rank int, addrs []string, opts TCPOptions) (Transport, error) {
	return comm.DialTCPOpts(rank, addrs, opts)
}

// NewFaultTransport wraps a transport with deterministic fault injection.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	return comm.NewFaultTransport(inner, cfg)
}

// RunResilient is RunCluster with failure recovery: clean abort of the
// surviving ranks when one fails, then either elastic repair at the failure
// barrier from buddy replicas (shrinking the ring or admitting a spare,
// per ResilientOptions.Elastic — no checkpoint read) or restart from the
// last coordinated checkpoint, on fresh transports built by the transports
// factory (once per attempt; elastic repair changes the requested size).
// The recovered loss trajectory is bit-identical to an uninterrupted run.
func RunResilient(s Strategy, p int, cfg Config, opts Options, iters int,
	batchesFn func(iter int) []Batch,
	transports func(attempt, size int) ([]Transport, error),
	ropts ResilientOptions) (*ClusterResult, error) {
	return pipeline.RunResilient(s, p, cfg, opts, iters, batchesFn, transports, ropts)
}

// CaptureSnapshot takes a coordinated full-state checkpoint (weights,
// optimizer moments, data cursor) of quiescent trainers.
func CaptureSnapshot(trainers []Trainer, completedIters int) (*Snapshot, error) {
	return pipeline.CaptureSnapshot(trainers, completedIters)
}

// RestoreSnapshot loads a coordinated checkpoint into a fresh cluster so
// training resumes bit-identically.
func RestoreSnapshot(snap *Snapshot, trainers []Trainer) error {
	return pipeline.RestoreSnapshot(snap, trainers)
}

// RunCluster trains iters iterations of strategy s on p in-process ranks
// and returns losses plus the assembled final weights.
func RunCluster(s Strategy, p int, cfg Config, opts Options, iters int,
	batchesFn func(iter int) []Batch) (*ClusterResult, error) {
	return pipeline.RunCluster(s, p, cfg, opts, iters, batchesFn)
}

// Microbatches generates the n deterministic microbatches of one iteration.
func Microbatches(seed uint64, n, g, vocab, seq int) []Batch {
	return data.Microbatches(seed, n, g, vocab, seq)
}

// A800 returns the paper's GPU spec.
func A800() GPUSpec { return cluster.A800() }

// Topology presets (see internal/cluster for details).
var (
	NVLinkSingle      = cluster.NVLinkSingle
	NVLinkTwoClusters = cluster.NVLinkTwoClusters
	PCIeEthernet      = cluster.PCIeEthernet
	NVLinkEthernet    = cluster.NVLinkEthernet
)

// SimResult summarises one performance simulation.
type SimResult struct {
	// TokensPerSecPerGPU is the modelled training throughput.
	TokensPerSecPerGPU float64
	// IterationSeconds is the simulated iteration wall time.
	IterationSeconds float64
	// BubbleRatio is the compute-idle fraction.
	BubbleRatio float64
	// MemoryGB is the modelled peak per-worker memory.
	MemoryGB float64
	// OOM is set when the workload exceeds the GPU budget (other fields
	// except MemoryGB are zero).
	OOM bool
}

// Simulate runs the performance model for one strategy on one workload and
// topology using the paper's A800 GPUs.
func Simulate(s Strategy, w Workload, top Topology) (SimResult, error) {
	return SimulateScaled(s, w, top, 1)
}

// OverlapMeasurement is a blocking-vs-overlapped measurement pair from the
// functional runtime; its SuggestedLinkScale feeds SimulateScaled.
type OverlapMeasurement = cost.OverlapMeasurement

// SimulateScaled is Simulate with a calibrated link-duration multiplier
// (see cost.OverlapMeasurement.SuggestedLinkScale): linkScale expresses how
// much of the modelled link time the measured transport actually exposes to
// compute. linkScale <= 0 or 1 reproduces Simulate.
func SimulateScaled(s Strategy, w Workload, top Topology, linkScale float64) (SimResult, error) {
	return SimulateP2P(s, w, top, linkScale, "")
}

// SimulateP2P is SimulateScaled with a P2P link-model selection: "" or
// "frame" is the baseline (one link task per belt hop), "batched" merges a
// tick's same-link belt hops into one envelope transfer, "duplex" gives
// each belt its own lane per link, "auto" picks per link from topology
// tier and latency — mirroring the runtime transport's -p2p-mode.
func SimulateP2P(s Strategy, w Workload, top Topology, linkScale float64, p2pMode string) (SimResult, error) {
	w = w.WithDefaults()
	gpu := cluster.A800()
	out := SimResult{MemoryGB: w.MemoryBytes(string(s)) / (1 << 30)}
	if !w.FitsMemory(string(s), gpu) {
		out.OOM = true
		return out, nil
	}
	tasks, err := schedule.Build(string(s), schedule.Spec{W: w, GPU: gpu, Top: top, Overlap: true, LinkScale: linkScale, P2PMode: p2pMode})
	if err != nil {
		return out, err
	}
	res, err := sim.Run(tasks)
	if err != nil {
		return out, err
	}
	out.IterationSeconds = res.Makespan
	out.TokensPerSecPerGPU = w.Tokens() / (res.Makespan * float64(w.P))
	out.BubbleRatio = res.BubbleRatio()
	return out, nil
}

// BuildModel constructs a model from cfg (deterministic in cfg.Seed).
func BuildModel(cfg Config) *Model { return model.Build(cfg) }

// LoadWeights writes a flat parameter vector (e.g. ClusterResult.Weights)
// into a model built with the matching config.
func LoadWeights(m *Model, weights []float32) {
	m.SetChunk(0, len(m.Modules), weights)
}

// GenOptions controls sampling in Generate.
type GenOptions = generate.Options

// Generate extends prompt by n sampled tokens using the trained model.
func Generate(m *Model, prompt []int, n int, opts GenOptions) ([]int, error) {
	return generate.Generate(m, prompt, n, opts)
}

// Snapshot is a serialisable training state (weights + named sections).
type Snapshot = checkpoint.Snapshot

// SnapshotModel captures a model's weights into a snapshot.
func SnapshotModel(m *Model) *Snapshot { return checkpoint.FromModel(m) }

// SaveCheckpoint writes a snapshot to path (atomic temp-file rename).
func SaveCheckpoint(path string, s *Snapshot) error { return checkpoint.Save(path, s) }

// LoadCheckpoint reads a snapshot from path, verifying its checksum.
func LoadCheckpoint(path string) (*Snapshot, error) { return checkpoint.Load(path) }

// NewHybridTrainer builds a 2-D WeiPipe×DP trainer: the world splits into
// rings of wpSize workers (data-parallel replicas); chunk owners all-reduce
// their accumulated gradients across replicas once per iteration. See
// pipeline.WeiPipeDP.
func NewHybridTrainer(t Transport, cfg Config, opts Options, wpSize int) (Trainer, error) {
	return pipeline.NewWeiPipeDP(t, cfg, opts, pipeline.WeiPipeInterleave, wpSize)
}

// Simulator-only strategies (no functional Trainer): tensor and sequence
// parallelism, implemented functionally in internal/tp and internal/sp and
// modelled for Simulate under these names.
const (
	TP Strategy = "tp"
	SP Strategy = "sp"
)
