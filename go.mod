module weipipe

go 1.24
