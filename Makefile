GO ?= go

.PHONY: build test check bench race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/comm/... ./internal/pipeline/...

# check is the pre-merge gate: static analysis plus the race detector over the
# packages with real concurrency (kernel worker pool, transports, pipeline
# schedules).
check: vet race

bench:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkTranspose' -benchmem -run NONE ./internal/tensor/
	$(GO) test -bench BenchmarkBlock -benchmem -run NONE ./internal/nn/
