GO ?= go
# FUZZTIME bounds each fuzz target's run; CI's smoke tier shrinks it.
FUZZTIME ?= 20s

.PHONY: build test test-noasm check fmt-check bench race vet chaos elastic fuzz soak sdc sdc-quick modes bench-overlap bench-overlap-quick bench-guard bench-sweep bench-kernel bench-grouped bench-p2p experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-noasm runs the full suite with the SIMD kernels compiled out: the
# scalar backend is the only registered backend and the assembly stubs
# resolve to the pure-Go fallbacks, mirroring non-amd64 platforms.
test-noasm:
	$(GO) test -tags noasm ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./internal/tensor/... ./internal/comm/... ./internal/pipeline/... ./internal/launch/...

# chaos runs the fault-injection suite under the race detector: transport
# chaos (drop/dup/reorder/corrupt/reset), deadline and peer-death paths,
# frame-decoder fuzz seeds, the checkpoint-recovery equivalence tests, and
# the grouped-belt suite (flat-equivalence, sub-ring collectives, and the
# grouped run over chaotic TCP).
chaos:
	$(GO) test -race -timeout 300s \
		-run 'Fault|Chaos|Timeout|PeerDeath|Recovery|Resilient|Crash|Frame|CloseFailsPending|CloseLeaks|DialTimeout|Grouped|SubRing' \
		./internal/comm/ ./internal/pipeline/ ./internal/launch/

# elastic runs the ring-repair suite under the race detector: buddy
# replication off the critical path, shrink/spare repair (including the
# headline kill-over-chaotic-TCP bit-identity test), double-death
# checkpoint fallback, membership agreement, restart-loop edge cases, and
# the straggler watchdog.
elastic:
	$(GO) test -race -timeout 300s \
		-run 'Elastic|Buddy|Watchdog|Repair|Membership|DeadPeer' \
		./internal/comm/ ./internal/pipeline/ ./internal/launch/

fuzz:
	$(GO) test -run NONE -fuzz FuzzParseFrameHeader -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzBatchFrameDecode -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzMembershipEvidence -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzChunkChecksum -fuzztime $(FUZZTIME) ./internal/comm/

# modes runs the P2P mode-equivalence suite for one transport mode under
# the race detector: every in-process and chaotic-TCP equivalence test plus
# the mode-specific transport tests. P2P_MODE filters the parameterized
# equivalence tests to one mode (frame, batched, duplex, auto; empty runs
# all), MODE_OUT collects JSONL run descriptors for artifact upload.
P2P_MODE ?=
MODE_OUT ?=
modes:
	WEIPIPE_P2P_MODE=$(P2P_MODE) WEIPIPE_MODE_OUT=$(MODE_OUT) \
		$(GO) test -race -run 'P2PMode' -count=1 -timeout 600s \
		./internal/comm/ ./internal/pipeline/ ./internal/schedule/

# soak replays SOAK_SCHEDULES seeded randomized fault schedules — process
# SIGKILLs, SIGSTOP stalls, timed one-sided partitions, frame-level chaos —
# against a 4-rank + 1-spare cross-process WZB2 cluster, requiring every
# run to finish bit-identical to its fault-free in-process replay with no
# goroutine or file-descriptor leaks. SOAK_OUT, when set, collects one
# JSONL supervisor trace per schedule (CI uploads them on failure).
SOAK_SCHEDULES ?= 8
soak:
	WEIPIPE_SOAK=$(SOAK_SCHEDULES) WEIPIPE_SOAK_OUT=$(SOAK_OUT) \
		$(GO) test -run TestSoakChaosSchedules -count=1 -v -timeout 600s ./internal/launch/

# sdc replays SDC_SCHEDULES seeded bit-flip schedules — corruption injected
# into resident weights, optimizer moments, belt staging buffers and (on
# alternate schedules) matmul outputs via the ABFT fault hook — against a
# WZB2 ring over chaotic TCP with full integrity defense armed. Every flip
# must be detected and repaired (checkpoint restart), every run must finish
# bit-identical to its fault-free oracle: zero silent corruptions. SDC_OUT,
# when set, collects one JSON report + Chrome trace per schedule.
SDC_SCHEDULES ?= 8
sdc:
	WEIPIPE_SDC=$(SDC_SCHEDULES) WEIPIPE_SDC_OUT=$(SDC_OUT) \
		$(GO) test -run TestSoakBitFlipSchedules -count=1 -v -timeout 600s ./internal/pipeline/

# sdc-quick is the 2-schedule slice of the bit-flip soak used inside the
# pre-merge gate (one kernel-flip schedule, one state-flip schedule).
sdc-quick:
	WEIPIPE_SDC=2 $(GO) test -run TestSoakBitFlipSchedules -count=1 -timeout 300s ./internal/pipeline/

# bench-overlap records the functional blocking-vs-overlapped belt-engine
# A/B — step time, the compute loop's blocked time inside weight-belt
# transport receives, exposed belt stalls, belt bytes in both wire formats,
# and a bit-identity verdict — into BENCH_overlap.json. Reps of the two
# modes are interleaved in time and min-filtered to suppress host noise.
bench-overlap:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 4 -reps 6 -out BENCH_overlap.json

# bench-overlap-quick keeps the same A/B inside the pre-merge gate at a
# fraction of the cost (small model, single rep); the report goes to a
# scratch file so the gate never dirties the checked-in measurement.
bench-overlap-quick:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 1 -reps 1 -H 128 -out /tmp/weipipe_bench_overlap_quick.json

# bench-guard is the CI regression guard: run the quick overlap A/B and
# fail unless the report's bit_identical verdict is true, then run the
# functional MatMulNT 256³ kernel A/B and fail unless the best SIMD
# backend beats scalar by 2× (the local target is 4×+; the CI margin
# absorbs shared-runner noise; hosts with no SIMD backend pass
# vacuously), then regenerate the grouped-belt traffic report and fail
# unless wzb2g stays bit-identical to wzb2 while cutting inter-group bytes
# both on the wire (p=16) and in the simulated grid. Report paths are
# overridable so CI can upload artifacts.
BENCH_GUARD_OUT ?= /tmp/weipipe_bench_guard.json
KERNEL_GUARD_OUT ?= /tmp/weipipe_kernel_guard.json
GROUPED_GUARD_OUT ?= /tmp/weipipe_grouped_guard.json
P2P_GUARD_OUT ?= /tmp/weipipe_p2p_guard.json
bench-guard:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 1 -reps 1 -H 128 \
		-out $(BENCH_GUARD_OUT) -require-bit-identical
	$(GO) run ./cmd/weipipe-bench -kernel -kernel-out $(KERNEL_GUARD_OUT) \
		-require-kernel-speedup 2
	$(GO) run ./cmd/weipipe-bench -grouped -grouped-out $(GROUPED_GUARD_OUT) \
		-require-grouped-win
	$(GO) run ./cmd/weipipe-bench -p2p -p2p-out $(P2P_GUARD_OUT) \
		-require-p2p-win

# bench-sweep regenerates BENCH_sweep.json, the committed machine-readable
# strategy×topology×scale grid of the cost model. The model is
# deterministic: a clean regeneration must leave the file unchanged.
bench-sweep:
	$(GO) run ./cmd/weipipe-bench -sweep -sweep-out BENCH_sweep.json

# bench-kernel records the committed functional kernel A/B measurement.
bench-kernel:
	$(GO) run ./cmd/weipipe-bench -kernel -kernel-out BENCH_kernel.json

# bench-grouped regenerates BENCH_grouped.json: the simulated flat-vs-grouped
# belt traffic grid (16–64 ranks on the hierarchical topologies) plus the
# functional p=16 A/B with per-link-tier byte meters and a bit-identity
# verdict. Both halves are deterministic, so a clean regeneration must leave
# the committed file unchanged.
bench-grouped:
	$(GO) run ./cmd/weipipe-bench -grouped -grouped-out BENCH_grouped.json

# bench-p2p regenerates BENCH_p2p.json: the simulated frame/batched/duplex/
# auto link-model grid (envelope counts, bytes, modelled throughput) plus
# the functional p=4 mode A/B against the frame baseline (belt traffic and
# bit-identity). Both halves are deterministic, so a clean regeneration
# must leave the committed file unchanged.
bench-p2p:
	$(GO) run ./cmd/weipipe-bench -p2p -p2p-out BENCH_p2p.json

# experiments regenerates the full paper-table output that EXPERIMENTS.md
# is curated from, stamped with the kernel backend that produced it. CI
# uploads the file as an artifact on every run.
EXPERIMENTS_OUT ?= /tmp/weipipe_experiments.txt
experiments:
	$(GO) run ./cmd/weipipe-bench -exp all > $(EXPERIMENTS_OUT)
	@echo "experiments regenerated into $(EXPERIMENTS_OUT)"

# check is the pre-merge gate: formatting, static analysis, the race
# detector over the packages with real concurrency (kernel worker pool,
# transports, pipeline schedules), the fault-injection suite, the
# elastic-repair suite, a 2-schedule slice of the bit-flip SDC soak, the
# noasm (scalar-only) build of the kernel packages, and a quick
# overlap-engine A/B (bit-identity + telemetry sanity).
check: fmt-check vet race chaos elastic sdc-quick check-noasm-kernels bench-overlap-quick

# check-noasm-kernels is the cheap slice of test-noasm used inside the
# pre-merge gate: just the packages whose code paths change under the tag.
.PHONY: check-noasm-kernels
check-noasm-kernels:
	$(GO) test -tags noasm ./internal/tensor/ ./internal/nn/

bench:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkTranspose' -benchmem -run NONE ./internal/tensor/
	$(GO) test -bench BenchmarkBlock -benchmem -run NONE ./internal/nn/
