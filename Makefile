GO ?= go

.PHONY: build test check bench race vet chaos elastic fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/comm/... ./internal/pipeline/...

# chaos runs the fault-injection suite under the race detector: transport
# chaos (drop/dup/reorder/corrupt/reset), deadline and peer-death paths,
# frame-decoder fuzz seeds, and the checkpoint-recovery equivalence tests.
chaos:
	$(GO) test -race -timeout 300s \
		-run 'Fault|Chaos|Timeout|PeerDeath|Recovery|Resilient|Crash|Frame|CloseFailsPending|CloseLeaks|DialTimeout' \
		./internal/comm/ ./internal/pipeline/

# elastic runs the ring-repair suite under the race detector: buddy
# replication off the critical path, shrink/spare repair (including the
# headline kill-over-chaotic-TCP bit-identity test), double-death
# checkpoint fallback, membership agreement, restart-loop edge cases, and
# the straggler watchdog.
elastic:
	$(GO) test -race -timeout 300s \
		-run 'Elastic|Buddy|Watchdog|Repair|Membership|DeadPeer' \
		./internal/comm/ ./internal/pipeline/

fuzz:
	$(GO) test -run NONE -fuzz FuzzParseFrameHeader -fuzztime 20s ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzReadFrame -fuzztime 20s ./internal/comm/

# check is the pre-merge gate: static analysis, the race detector over the
# packages with real concurrency (kernel worker pool, transports, pipeline
# schedules), the fault-injection suite, and the elastic-repair suite.
check: vet race chaos elastic

bench:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkTranspose' -benchmem -run NONE ./internal/tensor/
	$(GO) test -bench BenchmarkBlock -benchmem -run NONE ./internal/nn/
