GO ?= go

.PHONY: build test check bench race vet chaos elastic fuzz bench-overlap bench-overlap-quick

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/comm/... ./internal/pipeline/...

# chaos runs the fault-injection suite under the race detector: transport
# chaos (drop/dup/reorder/corrupt/reset), deadline and peer-death paths,
# frame-decoder fuzz seeds, and the checkpoint-recovery equivalence tests.
chaos:
	$(GO) test -race -timeout 300s \
		-run 'Fault|Chaos|Timeout|PeerDeath|Recovery|Resilient|Crash|Frame|CloseFailsPending|CloseLeaks|DialTimeout' \
		./internal/comm/ ./internal/pipeline/

# elastic runs the ring-repair suite under the race detector: buddy
# replication off the critical path, shrink/spare repair (including the
# headline kill-over-chaotic-TCP bit-identity test), double-death
# checkpoint fallback, membership agreement, restart-loop edge cases, and
# the straggler watchdog.
elastic:
	$(GO) test -race -timeout 300s \
		-run 'Elastic|Buddy|Watchdog|Repair|Membership|DeadPeer' \
		./internal/comm/ ./internal/pipeline/

fuzz:
	$(GO) test -run NONE -fuzz FuzzParseFrameHeader -fuzztime 20s ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzReadFrame -fuzztime 20s ./internal/comm/

# bench-overlap records the functional blocking-vs-overlapped belt-engine
# A/B — step time, the compute loop's blocked time inside weight-belt
# transport receives, exposed belt stalls, belt bytes in both wire formats,
# and a bit-identity verdict — into BENCH_overlap.json. Reps of the two
# modes are interleaved in time and min-filtered to suppress host noise.
bench-overlap:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 4 -reps 6 -out BENCH_overlap.json

# bench-overlap-quick keeps the same A/B inside the pre-merge gate at a
# fraction of the cost (small model, single rep); the report goes to a
# scratch file so the gate never dirties the checked-in measurement.
bench-overlap-quick:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 1 -reps 1 -H 128 -out /tmp/weipipe_bench_overlap_quick.json

# check is the pre-merge gate: static analysis, the race detector over the
# packages with real concurrency (kernel worker pool, transports, pipeline
# schedules), the fault-injection suite, the elastic-repair suite, and a
# quick overlap-engine A/B (bit-identity + telemetry sanity).
check: vet race chaos elastic bench-overlap-quick

bench:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkTranspose' -benchmem -run NONE ./internal/tensor/
	$(GO) test -bench BenchmarkBlock -benchmem -run NONE ./internal/nn/
