GO ?= go
# FUZZTIME bounds each fuzz target's run; CI's smoke tier shrinks it.
FUZZTIME ?= 20s

.PHONY: build test check fmt-check bench race vet chaos elastic fuzz bench-overlap bench-overlap-quick bench-guard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./internal/tensor/... ./internal/comm/... ./internal/pipeline/...

# chaos runs the fault-injection suite under the race detector: transport
# chaos (drop/dup/reorder/corrupt/reset), deadline and peer-death paths,
# frame-decoder fuzz seeds, and the checkpoint-recovery equivalence tests.
chaos:
	$(GO) test -race -timeout 300s \
		-run 'Fault|Chaos|Timeout|PeerDeath|Recovery|Resilient|Crash|Frame|CloseFailsPending|CloseLeaks|DialTimeout' \
		./internal/comm/ ./internal/pipeline/

# elastic runs the ring-repair suite under the race detector: buddy
# replication off the critical path, shrink/spare repair (including the
# headline kill-over-chaotic-TCP bit-identity test), double-death
# checkpoint fallback, membership agreement, restart-loop edge cases, and
# the straggler watchdog.
elastic:
	$(GO) test -race -timeout 300s \
		-run 'Elastic|Buddy|Watchdog|Repair|Membership|DeadPeer' \
		./internal/comm/ ./internal/pipeline/

fuzz:
	$(GO) test -run NONE -fuzz FuzzParseFrameHeader -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) ./internal/comm/

# bench-overlap records the functional blocking-vs-overlapped belt-engine
# A/B — step time, the compute loop's blocked time inside weight-belt
# transport receives, exposed belt stalls, belt bytes in both wire formats,
# and a bit-identity verdict — into BENCH_overlap.json. Reps of the two
# modes are interleaved in time and min-filtered to suppress host noise.
bench-overlap:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 4 -reps 6 -out BENCH_overlap.json

# bench-overlap-quick keeps the same A/B inside the pre-merge gate at a
# fraction of the cost (small model, single rep); the report goes to a
# scratch file so the gate never dirties the checked-in measurement.
bench-overlap-quick:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 1 -reps 1 -H 128 -out /tmp/weipipe_bench_overlap_quick.json

# bench-guard is the CI regression guard: run the quick overlap A/B and
# fail unless the report's bit_identical verdict is true. The report path
# is overridable so CI can upload it as an artifact.
BENCH_GUARD_OUT ?= /tmp/weipipe_bench_guard.json
bench-guard:
	$(GO) run ./cmd/weipipe-bench -overlap -iters 1 -reps 1 -H 128 \
		-out $(BENCH_GUARD_OUT) -require-bit-identical

# check is the pre-merge gate: formatting, static analysis, the race
# detector over the packages with real concurrency (kernel worker pool,
# transports, pipeline schedules), the fault-injection suite, the
# elastic-repair suite, and a quick overlap-engine A/B (bit-identity +
# telemetry sanity).
check: fmt-check vet race chaos elastic bench-overlap-quick

bench:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkTranspose' -benchmem -run NONE ./internal/tensor/
	$(GO) test -bench BenchmarkBlock -benchmem -run NONE ./internal/nn/
