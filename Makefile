GO ?= go

.PHONY: build test check bench race vet chaos fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/tensor/... ./internal/comm/... ./internal/pipeline/...

# chaos runs the fault-injection suite under the race detector: transport
# chaos (drop/dup/reorder/corrupt/reset), deadline and peer-death paths,
# frame-decoder fuzz seeds, and the checkpoint-recovery equivalence tests.
chaos:
	$(GO) test -race -timeout 300s \
		-run 'Fault|Chaos|Timeout|PeerDeath|Recovery|Resilient|Crash|Frame|CloseFailsPending|CloseLeaks|DialTimeout' \
		./internal/comm/ ./internal/pipeline/

fuzz:
	$(GO) test -run NONE -fuzz FuzzParseFrameHeader -fuzztime 20s ./internal/comm/
	$(GO) test -run NONE -fuzz FuzzReadFrame -fuzztime 20s ./internal/comm/

# check is the pre-merge gate: static analysis, the race detector over the
# packages with real concurrency (kernel worker pool, transports, pipeline
# schedules), and the fault-injection suite.
check: vet race chaos

bench:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkTranspose' -benchmem -run NONE ./internal/tensor/
	$(GO) test -bench BenchmarkBlock -benchmem -run NONE ./internal/nn/
